package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/persist"
)

// postWire posts a raw body with the binary wire Content-Type.
func postWire(t *testing.T, h http.Handler, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", persist.WireContentType)
	req.Header.Set("Accept", persist.WireContentType)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestNodeWireCorruptionFailsClosed: corrupt or truncated binary
// bodies on every node endpoint are rejected with a 4xx and are NEVER
// partially applied — after a poisoned /node/add/batch the index
// holds exactly what it held before.
func TestNodeWireCorruptionFailsClosed(t *testing.T) {
	ix := ir.NewIndex()
	ix.Add(1, "u", "melbourne champion")
	h := NewNodeHandler(ix, nil)

	wb := persist.GetWireBuffer()
	defer persist.PutWireBuffer(wb)
	wb.EncodeAddBatchRequest([]persist.Op{
		{Doc: 10, Text: "trophy rally"},
		{Doc: 11, Text: "ace court"},
	})
	batch := append([]byte(nil), wb.Bytes()...)

	// A healthy frame commits (sanity check of the fixture).
	if w := postWire(t, h, dist.PathNodeAddBatch, batch); w.Code != http.StatusOK {
		t.Fatalf("healthy wire batch = %d: %s", w.Code, w.Body.Bytes())
	}
	if ix.DocCount() != 3 {
		t.Fatalf("docs = %d, want 3", ix.DocCount())
	}

	wb.EncodeAddBatchRequest([]persist.Op{
		{Doc: 20, Text: "winner"},
		{Doc: 21, Text: "volley"},
	})
	poison := append([]byte(nil), wb.Bytes()...)
	cases := map[string][]byte{
		"truncated":    poison[:len(poison)-3],
		"bit-flipped":  append(append([]byte(nil), poison[:len(poison)-1]...), poison[len(poison)-1]^0x40),
		"header-only":  poison[:persist.WireHeaderLen],
		"garbage":      []byte("this is not a wire frame at all, not even close"),
		"empty":        {},
		"wrong-kind":   nil, // filled below: a verified frame of another kind
		"bad-version":  append([]byte(nil), poison...),
		"trailing-pad": append(append([]byte(nil), poison...), 0xff),
	}
	wb.EncodeAck()
	cases["wrong-kind"] = append([]byte(nil), wb.Bytes()...)
	cases["bad-version"][6] ^= 0x7f

	for name, body := range cases {
		w := postWire(t, h, dist.PathNodeAddBatch, body)
		if w.Code < 400 || w.Code >= 500 {
			t.Fatalf("%s batch = %d, want 4xx: %s", name, w.Code, w.Body.Bytes())
		}
		if ix.DocCount() != 3 {
			t.Fatalf("%s batch partially applied: docs = %d, want 3", name, ix.DocCount())
		}
	}

	// The query endpoints fail closed the same way.
	for _, path := range []string{dist.PathNodeTopN, dist.PathNodeSearch} {
		w := postWire(t, h, path, []byte("garbage garbage garbage garbage garbage garbage"))
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s garbage = %d, want 400: %s", path, w.Code, w.Body.Bytes())
		}
	}
}

// TestNodeJSONOnlyRefusesBinary: a node started -wire=json answers
// 415 to binary bodies and does not expose the upgrade endpoint, so
// clients negotiate down instead of misparsing.
func TestNodeJSONOnlyRefusesBinary(t *testing.T) {
	h := NewNodeHandler(ir.NewIndex(), &NodeConfig{JSONOnly: true})

	wb := persist.GetWireBuffer()
	defer persist.PutWireBuffer(wb)
	wb.EncodeAddBatchRequest([]persist.Op{{Doc: 1, Text: "ace"}})
	if w := postWire(t, h, dist.PathNodeAddBatch, append([]byte(nil), wb.Bytes()...)); w.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("binary batch on JSON-only node = %d, want 415: %s", w.Code, w.Body.Bytes())
	}
	wb.EncodeTopNRequest("ace", 5, ir.Stats{})
	if w := postWire(t, h, dist.PathNodeTopN, append([]byte(nil), wb.Bytes()...)); w.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("binary topn on JSON-only node = %d, want 415: %s", w.Code, w.Body.Bytes())
	}

	req := httptest.NewRequest(http.MethodGet, dist.PathNodeWire, nil)
	req.Header.Set("Upgrade", persist.WireProtocol)
	req.Header.Set("Connection", "Upgrade")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusNotFound {
		t.Fatalf("/node/wire on JSON-only node = %d, want 404", w.Code)
	}

	// JSON keeps working.
	if w := postJSON(t, h, dist.PathNodeAddBatch, `{"docs":[{"doc":1,"text":"ace"}]}`); w.Code != http.StatusOK {
		t.Fatalf("JSON batch on JSON-only node = %d: %s", w.Code, w.Body.Bytes())
	}
}

// TestNodeWireAcceptNegotiation: the same endpoint answers JSON or
// framed binary depending on Accept, and the two carry identical
// rankings.
func TestNodeWireAcceptNegotiation(t *testing.T) {
	ix := ir.NewIndex()
	ix.Add(1, "u", "melbourne champion ace")
	ix.Add(2, "u", "champion serve")
	h := NewNodeHandler(ix, nil)
	stats := ix.StatsLocal()

	// JSON request, JSON response (no Accept).
	statsJSON, err := json.Marshal(map[string]any{
		"query": "champion", "n": 5,
		"stats": map[string]any{"df": stats.DF, "total_df": stats.TotalDF, "docs": stats.Docs},
	})
	if err != nil {
		t.Fatal(err)
	}
	wj := postJSON(t, h, dist.PathNodeTopN, string(statsJSON))
	if wj.Code != http.StatusOK {
		t.Fatalf("JSON topn = %d: %s", wj.Code, wj.Body.Bytes())
	}
	var jr struct {
		Results []struct {
			Doc   uint64  `json:"doc"`
			Score float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.Unmarshal(wj.Body.Bytes(), &jr); err != nil {
		t.Fatal(err)
	}

	// Binary request, binary response.
	wb := persist.GetWireBuffer()
	defer persist.PutWireBuffer(wb)
	wb.EncodeTopNRequest("champion", 5, stats)
	wbin := postWire(t, h, dist.PathNodeTopN, append([]byte(nil), wb.Bytes()...))
	if wbin.Code != http.StatusOK {
		t.Fatalf("binary topn = %d: %s", wbin.Code, wbin.Body.Bytes())
	}
	if ct := wbin.Header().Get("Content-Type"); !strings.HasPrefix(ct, persist.WireContentType) {
		t.Fatalf("binary response Content-Type = %q", ct)
	}
	rs, err := persist.DecodeTopNResponse(wbin.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(jr.Results) {
		t.Fatalf("binary %d results, JSON %d", len(rs), len(jr.Results))
	}
	for i := range rs {
		if uint64(rs[i].Doc) != jr.Results[i].Doc || rs[i].Score != jr.Results[i].Score {
			t.Fatalf("rank %d: binary %+v, JSON %+v", i, rs[i], jr.Results[i])
		}
	}
}

// TestCoordinatorMixedCodecCluster is the mixed-deployment e2e: one
// binary-speaking node and one JSON-only node behind one coordinator.
// /search must be complete and byte-identical to an all-JSON cluster
// over the same corpus, and /stats must report the negotiated codec
// per replica.
func TestCoordinatorMixedCodecCluster(t *testing.T) {
	corpus := []string{
		"melbourne champion ace", "winner serve volley", "trophy rally smash",
		"champion winner melbourne", "ace court serve", "seles hingis capriati",
	}
	build := func(jsonOnly0, jsonOnly1 bool, codec dist.Codec) http.Handler {
		nodes := make([]dist.Node, 2)
		for i, jo := range []bool{jsonOnly0, jsonOnly1} {
			srv := httptest.NewServer(NewNodeHandler(ir.NewIndex(), &NodeConfig{JSONOnly: jo}))
			t.Cleanup(srv.Close)
			rn := dist.NewRemoteNode(srv.URL, srv.Client())
			rn.SetCodec(codec)
			nodes[i] = rn
		}
		cluster := dist.NewClusterOf(nodes, nil)
		co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
		h := co.Handler()
		for i, text := range corpus {
			body, _ := json.Marshal(map[string]any{"doc": i + 1, "text": text})
			if w := postJSON(t, h, "/add", string(body)); w.Code != http.StatusOK {
				t.Fatalf("add %d = %d: %s", i+1, w.Code, w.Body.Bytes())
			}
		}
		return h
	}

	mixed := build(false, true, dist.CodecBinary) // node 0 binary, node 1 JSON-only
	allJSON := build(false, false, dist.CodecJSON)

	for _, q := range []string{"champion", "melbourne winner", "seles", "ace serve court"} {
		for _, n := range []int{1, 2, 4, 8} {
			body, _ := json.Marshal(map[string]any{"query": q, "n": n})
			wm := postJSON(t, mixed, "/search", string(body))
			wj := postJSON(t, allJSON, "/search", string(body))
			if wm.Code != http.StatusOK || wj.Code != http.StatusOK {
				t.Fatalf("q=%q n=%d: mixed=%d json=%d", q, n, wm.Code, wj.Code)
			}
			var mr, jr SearchResponse
			if err := json.Unmarshal(wm.Body.Bytes(), &mr); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(wj.Body.Bytes(), &jr); err != nil {
				t.Fatal(err)
			}
			if !mr.Complete {
				t.Fatalf("q=%q n=%d: mixed cluster incomplete: %+v", q, n, mr)
			}
			if len(mr.Results) != len(jr.Results) {
				t.Fatalf("q=%q n=%d: mixed %d results, json %d", q, n, len(mr.Results), len(jr.Results))
			}
			for i := range jr.Results {
				if mr.Results[i] != jr.Results[i] {
					t.Fatalf("q=%q n=%d rank %d: mixed %+v, json %+v", q, n, i, mr.Results[i], jr.Results[i])
				}
			}
			if mr.Quality != jr.Quality {
				t.Fatalf("q=%q n=%d: mixed quality %v, json %v", q, n, mr.Quality, jr.Quality)
			}
		}
	}

	// /stats surfaces the negotiated codec per replica: the binary
	// node reports "binary", the JSON-only one "json-fallback".
	w := get(t, mixed, "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("/stats = %d: %s", w.Code, w.Body.Bytes())
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	codecs := map[string]int{}
	for _, ist := range st.Indexes {
		for _, g := range ist.Groups {
			for _, r := range g.Replicas {
				codecs[r.WireCodec]++
				if r.WireBytesIn == 0 || r.WireBytesOut == 0 {
					t.Fatalf("replica with codec %q reports no traffic: %+v", r.WireCodec, r)
				}
			}
		}
	}
	if codecs["binary"] != 1 || codecs["json-fallback"] != 1 {
		t.Fatalf("negotiated codecs = %v, want one binary and one json-fallback", codecs)
	}
}
