package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/core"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/persist"
)

func postJSON(t *testing.T, h http.Handler, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

// --- node handler validation ---

func TestNodeHandlerValidation(t *testing.T) {
	h := NewNodeHandler(ir.NewIndex(), &NodeConfig{MaxBody: 512})
	cases := []struct {
		name, path, body string
		status           int
	}{
		{"malformed add", dist.PathNodeAdd, `{"doc": nope}`, http.StatusBadRequest},
		{"missing doc oid", dist.PathNodeAdd, `{"url":"u","text":"hi"}`, http.StatusBadRequest},
		{"trailing data", dist.PathNodeAdd, `{"doc":1,"text":"a"} extra`, http.StatusBadRequest},
		{"oversized body", dist.PathNodeAdd, `{"doc":1,"text":"` + strings.Repeat("x", 2048) + `"}`, http.StatusRequestEntityTooLarge},
		{"malformed topn", dist.PathNodeTopN, `{`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if w := postJSON(t, h, c.path, c.body); w.Code != c.status {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, c.status, w.Body)
			}
		})
	}
	if w := get(t, h, dist.PathNodeTopN); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET topn = %d, want 405", w.Code)
	}
	// Empty queries and non-positive n mirror LocalNode: well-defined
	// empty rankings, not errors — Cluster transparency depends on
	// the node protocol never rejecting what a LocalNode accepts.
	for _, body := range []string{`{"query":"","n":10}`, `{"query":"a","n":0}`, `{"query":"a","n":-3}`} {
		if w := postJSON(t, h, dist.PathNodeTopN, body); w.Code != http.StatusOK {
			t.Fatalf("degenerate topn %s = %d, want 200 (%s)", body, w.Code, w.Body)
		}
	}
	if w := postJSON(t, h, dist.PathNodeStats, `{}`); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST stats = %d, want 405", w.Code)
	}
	if w := get(t, h, dist.PathHealthz); w.Code != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", w.Code)
	}
}

// --- coordinator validation ---

func testCoordinator(t *testing.T, cfg *CoordinatorConfig) (*Coordinator, http.Handler) {
	t.Helper()
	cluster := dist.NewCluster(2, nil)
	for i, text := range []string{
		"melbourne champion trophy",
		"champion winner serve",
		"volley smash rally",
	} {
		cluster.Add(bat.OID(i+1), fmt.Sprintf("doc-%d", i+1), text)
	}
	co := NewCoordinator(map[string]*dist.Cluster{"articles": cluster}, cfg)
	return co, co.Handler()
}

func TestCoordinatorValidation(t *testing.T) {
	_, h := testCoordinator(t, &CoordinatorConfig{MaxBody: 512})
	cases := []struct {
		name, path, body string
		status           int
	}{
		{"malformed search", "/search", `{"query": }`, http.StatusBadRequest},
		{"missing query", "/search", `{"index":"articles","n":10}`, http.StatusBadRequest},
		{"zero n", "/search", `{"index":"articles","query":"champion","n":0}`, http.StatusBadRequest},
		{"negative n", "/search", `{"index":"articles","query":"champion","n":-1}`, http.StatusBadRequest},
		{"unknown index", "/search", `{"index":"nope","query":"champion","n":10}`, http.StatusNotFound},
		{"oversized search", "/search", `{"query":"` + strings.Repeat("q ", 1024) + `","n":1}`, http.StatusRequestEntityTooLarge},
		{"malformed add", "/add", `not json`, http.StatusBadRequest},
		{"missing text", "/add", `{"index":"articles"}`, http.StatusBadRequest},
		{"unknown index add", "/add", `{"index":"nope","text":"hello"}`, http.StatusNotFound},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if w := postJSON(t, h, c.path, c.body); w.Code != c.status {
				t.Fatalf("status = %d, want %d (body %s)", w.Code, c.status, w.Body)
			}
		})
	}
	if w := get(t, h, "/search"); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search = %d, want 405", w.Code)
	}
}

// TestCoordinatorSearchAddStats drives the full serving loop: add
// documents, search them, read the counters back.
func TestCoordinatorSearchAddStats(t *testing.T) {
	_, h := testCoordinator(t, nil)

	// The fixture seeded oids 1..3 directly on the cluster; the
	// auto-assigner continues the dense sequence after them.
	w := postJSON(t, h, "/add", `{"text":"seles wins melbourne","url":"doc-new"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/add = %d: %s", w.Code, w.Body)
	}
	var added AddDocResponse
	if err := json.Unmarshal(w.Body.Bytes(), &added); err != nil || added.Doc != 4 {
		t.Fatalf("add response %s (want doc 4): %v", w.Body, err)
	}

	w = postJSON(t, h, "/search", `{"index":"articles","query":"champion melbourne","n":10}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/search = %d: %s", w.Code, w.Body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Complete || len(sr.Results) == 0 {
		t.Fatalf("search response %+v", sr)
	}
	for i := 1; i < len(sr.Results); i++ {
		if sr.Results[i].Score > sr.Results[i-1].Score {
			t.Fatalf("ranking out of order: %+v", sr.Results)
		}
	}

	// Index name may be omitted when a single index is served.
	if w = postJSON(t, h, "/search", `{"query":"champion","n":5}`); w.Code != http.StatusOK {
		t.Fatalf("nameless /search = %d: %s", w.Code, w.Body)
	}

	w = get(t, h, "/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("/stats = %d", w.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests.Search != 2 || st.Requests.Add != 1 {
		t.Fatalf("request counters = %+v", st.Requests)
	}
	ix, ok := st.Indexes["articles"]
	if !ok || ix.Docs != 4 || ix.Nodes != 2 {
		t.Fatalf("index stats = %+v", st.Indexes)
	}
}

// TestCoordinatorQueryCacheStats: the engine's cache counters surface
// in /stats, moving as cached local nodes serve repeated queries.
func TestCoordinatorQueryCacheStats(t *testing.T) {
	qc := core.NewQueryCache(32)
	ix := ir.NewIndex()
	ln := dist.NewLocalNode(ix)
	ln.SetResolver(qc.Resolve)
	cluster := dist.NewClusterOf([]dist.Node{ln}, nil)
	cluster.Add(1, "u", "melbourne champion trophy")
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, &CoordinatorConfig{Cache: qc})
	h := co.Handler()
	for i := 0; i < 3; i++ {
		if w := postJSON(t, h, "/search", `{"query":"champion","n":5}`); w.Code != http.StatusOK {
			t.Fatalf("/search = %d: %s", w.Code, w.Body)
		}
	}
	var st StatsResponse
	if err := json.Unmarshal(get(t, h, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.QueryCache == nil {
		t.Fatal("query_cache missing from /stats")
	}
	if st.QueryCache.Misses == 0 || st.QueryCache.Hits == 0 {
		t.Fatalf("cache counters = %+v, want hits and misses > 0", st.QueryCache)
	}
}

// TestCoordinatorOverRemoteNodes: the full network stack — coordinator
// → RemoteNode → node server — returns the single-index ranking.
func TestCoordinatorOverRemoteNodes(t *testing.T) {
	var nodes []dist.Node
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(NewNodeHandler(ir.NewIndex(), nil))
		t.Cleanup(srv.Close)
		nodes = append(nodes, dist.NewRemoteNode(srv.URL, srv.Client()))
	}
	cluster := dist.NewClusterOf(nodes, &dist.Options{NodeTimeout: 5 * time.Second})
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	h := co.Handler()

	single := ir.NewIndex()
	texts := []string{"melbourne champion", "champion winner serve", "volley smash", "trophy champion rally"}
	for i, text := range texts {
		single.Add(bat.OID(i+1), "u", text)
		w := postJSON(t, h, "/add", fmt.Sprintf(`{"text":%q,"url":"u"}`, text))
		if w.Code != http.StatusOK {
			t.Fatalf("/add = %d: %s", w.Code, w.Body)
		}
	}
	w := postJSON(t, h, "/search", `{"query":"champion","n":10}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/search = %d: %s", w.Code, w.Body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	want := single.TopN("champion", 10)
	if len(sr.Results) != len(want) {
		t.Fatalf("%d results, want %d", len(sr.Results), len(want))
	}
	for i, r := range want {
		if sr.Results[i].Doc != uint64(r.Doc) || sr.Results[i].Score != r.Score {
			t.Fatalf("rank %d = %+v, want %+v", i, sr.Results[i], r)
		}
	}
}

// TestCoordinatorRestartContinuesOIDs: a new coordinator in front of
// a cluster that already holds documents continues the oid sequence
// instead of reusing oid 1 and silently merging documents.
func TestCoordinatorRestartContinuesOIDs(t *testing.T) {
	cluster := dist.NewCluster(2, nil)
	first := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	h := first.Handler()
	for i := 0; i < 3; i++ {
		if w := postJSON(t, h, "/add", `{"text":"melbourne champion"}`); w.Code != http.StatusOK {
			t.Fatalf("/add = %d: %s", w.Code, w.Body)
		}
	}
	// A sparse explicit oid leaves a gap in the sequence.
	if w := postJSON(t, h, "/add", `{"doc":10,"text":"serve rally"}`); w.Code != http.StatusOK {
		t.Fatalf("explicit /add = %d: %s", w.Code, w.Body)
	}
	// "Restart": a fresh coordinator over the same still-loaded
	// cluster must continue after the highest live oid, not the count.
	restarted := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	w := postJSON(t, restarted.Handler(), "/add", `{"text":"trophy winner"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("post-restart /add = %d: %s", w.Code, w.Body)
	}
	var added AddDocResponse
	if err := json.Unmarshal(w.Body.Bytes(), &added); err != nil || added.Doc != 11 {
		t.Fatalf("post-restart add = %s (want doc 11): %v", w.Body, err)
	}
	if got := cluster.DocCount(); got != 5 {
		t.Fatalf("doc count = %d, want 5 distinct documents", got)
	}
}

// TestCoordinatorConcurrentAddSearch: the serving layer may index and
// query local nodes at the same time (the race detector guards the
// LocalNode locking here).
func TestCoordinatorConcurrentAddSearch(t *testing.T) {
	cluster := dist.NewCluster(2, nil)
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	h := co.Handler()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if g%2 == 0 {
					w := postJSON(t, h, "/add", `{"text":"melbourne champion trophy"}`)
					if w.Code != http.StatusOK {
						t.Errorf("/add = %d: %s", w.Code, w.Body)
						return
					}
				} else {
					w := postJSON(t, h, "/search", `{"query":"champion","n":5}`)
					if w.Code != http.StatusOK {
						t.Errorf("/search = %d: %s", w.Code, w.Body)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrencyLimit: requests beyond the bound are shed with 503
// instead of queueing.
func TestConcurrencyLimit(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	sem := newSemaphore(1)
	h := sem.wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		entered <- struct{}{}
		<-release
		w.WriteHeader(http.StatusOK)
	}))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/", nil))
	}()
	<-entered // first request holds the only slot
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("second request = %d, want 503", w.Code)
	}
	if sem.Shed() != 1 || sem.Limit() != 1 || sem.InFlight() != 1 {
		t.Fatalf("semaphore pressure shed=%d limit=%d inflight=%d, want 1/1/1",
			sem.Shed(), sem.Limit(), sem.InFlight())
	}
	close(release)
	wg.Wait()
}

// TestRunGracefulShutdown: Run serves until the context is cancelled,
// then drains and returns nil.
func TestRunGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Run(ctx, "127.0.0.1:0", http.NewServeMux(), time.Second)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not shut down")
	}
}

// TestCoordinatorBudgetedSearch: the /search plan knobs surface the
// fragment cut-off end to end — body fields and the ?frag= query
// parameter — and the response carries the cluster-wide quality.
func TestCoordinatorBudgetedSearch(t *testing.T) {
	cluster := dist.NewCluster(2, nil)
	for i := 0; i < 60; i++ {
		text := "match play game set court ball"
		if i%10 == 0 {
			text = "seles melbourne trophy"
		}
		cluster.Add(bat.OID(i+1), "u", text)
	}
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	h := co.Handler()

	// Exact search: quality reports value 1.
	w := postJSON(t, h, "/search", `{"query":"seles match","n":10}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/search = %d: %s", w.Code, w.Body)
	}
	var exact SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &exact); err != nil {
		t.Fatal(err)
	}
	if exact.Quality.Value != 1.0 {
		t.Fatalf("exact quality = %+v", exact.Quality)
	}

	// Budgeted via body fields: quality drops below 1 and the ranking
	// still answers.
	w = postJSON(t, h, "/search", `{"query":"seles match ball","n":10,"frags":8,"budget":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("budgeted /search = %d: %s", w.Code, w.Body)
	}
	var budgeted SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &budgeted); err != nil {
		t.Fatal(err)
	}
	if v := budgeted.Quality.Value; v >= 1.0 || v <= 0 {
		t.Fatalf("budgeted quality = %+v, want in (0, 1)", budgeted.Quality)
	}
	if len(budgeted.Results) == 0 || !budgeted.Complete {
		t.Fatalf("budgeted response = %+v", budgeted)
	}

	// The ?frag= query parameter is the curl-side spelling of the
	// budget and overrides the body.
	w = postJSON(t, h, "/search?frag=1&frags=8", `{"query":"seles match ball","n":10}`)
	if w.Code != http.StatusOK {
		t.Fatalf("?frag= /search = %d: %s", w.Code, w.Body)
	}
	var viaParam SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &viaParam); err != nil {
		t.Fatal(err)
	}
	if viaParam.Quality != budgeted.Quality {
		t.Fatalf("?frag= quality %+v != body-budget quality %+v", viaParam.Quality, budgeted.Quality)
	}

	// An explicit body budget of 0 overrides a configured default
	// budget back to the exact search.
	co2 := NewCoordinator(map[string]*dist.Cluster{"a": cluster},
		&CoordinatorConfig{Frags: 8, FragBudget: 1})
	h2 := co2.Handler()
	w = postJSON(t, h2, "/search", `{"query":"seles match ball","n":10,"budget":0}`)
	var exactOverride SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &exactOverride); err != nil {
		t.Fatal(err)
	}
	if exactOverride.Quality.Value != 1.0 {
		t.Fatalf("body budget:0 did not force exact: %+v", exactOverride.Quality)
	}
	w = postJSON(t, h2, "/search", `{"query":"seles match ball","n":10}`)
	var defaulted SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &defaulted); err != nil {
		t.Fatal(err)
	}
	if defaulted.Quality.Value >= 1.0 {
		t.Fatalf("configured default budget not applied: %+v", defaulted.Quality)
	}

	// A quality floor re-admits fragments.
	w = postJSON(t, h, "/search", `{"query":"seles match ball","n":10,"frags":8,"budget":1,"min_quality":1.0}`)
	var floored SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &floored); err != nil {
		t.Fatal(err)
	}
	if floored.Quality.Value != 1.0 {
		t.Fatalf("floored quality = %+v", floored.Quality)
	}

	// Malformed plan parameters are 4xx — query params and the
	// equivalent body fields alike.
	for _, path := range []string{"/search?frag=x", "/search?frags=-2", "/search?min_quality=2"} {
		if w := postJSON(t, h, path, `{"query":"seles","n":5}`); w.Code != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", path, w.Code)
		}
	}
	for _, body := range []string{
		`{"query":"seles","n":5,"min_quality":2}`,
		`{"query":"seles","n":5,"budget":-1}`,
		`{"query":"seles","n":5,"frags":-3}`,
	} {
		if w := postJSON(t, h, "/search", body); w.Code != http.StatusBadRequest {
			t.Fatalf("body %s = %d, want 400", body, w.Code)
		}
	}
}

// TestCoordinatorAddBatch: one batch request indexes many documents,
// auto-assigning oids in order and mixing with explicit oids; the
// request counter moves by the number of documents.
func TestCoordinatorAddBatch(t *testing.T) {
	cluster := dist.NewCluster(2, nil)
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	h := co.Handler()
	w := postJSON(t, h, "/add/batch",
		`{"docs":[{"text":"melbourne champion trophy"},{"doc":10,"text":"seles wins"},{"text":"volley smash rally"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/add/batch = %d: %s", w.Code, w.Body)
	}
	var resp AddBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Docs) != 3 || resp.Docs[0] != 1 || resp.Docs[1] != 10 || resp.Docs[2] != 11 {
		t.Fatalf("assigned oids = %v, want [1 10 11]", resp.Docs)
	}
	if got := cluster.DocCount(); got != 3 {
		t.Fatalf("doc count = %d, want 3", got)
	}
	// The documents are searchable.
	w = postJSON(t, h, "/search", `{"query":"champion","n":5}`)
	var sr SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil || len(sr.Results) == 0 {
		t.Fatalf("post-batch search = %s: %v", w.Body, err)
	}
	// Validation: empty batch and missing text are 400.
	if w := postJSON(t, h, "/add/batch", `{"docs":[]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("empty batch = %d, want 400", w.Code)
	}
	if w := postJSON(t, h, "/add/batch", `{"docs":[{"text":"a"},{"url":"u"}]}`); w.Code != http.StatusBadRequest {
		t.Fatalf("missing text = %d, want 400", w.Code)
	}
	var st StatsResponse
	if err := json.Unmarshal(get(t, h, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests.Add != 3 {
		t.Fatalf("add counter = %d, want 3", st.Requests.Add)
	}
}

// TestNodeBatchAndSearchEndpoints: the node wire protocol's batch add
// and plan search endpoints validate and answer like a LocalNode.
func TestNodeBatchAndSearchEndpoints(t *testing.T) {
	h := NewNodeHandler(ir.NewIndex(), nil)
	w := postJSON(t, h, dist.PathNodeAddBatch,
		`{"docs":[{"doc":1,"text":"seles melbourne"},{"doc":2,"text":"match ball court"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("node batch = %d: %s", w.Code, w.Body)
	}
	for _, body := range []string{`{"docs":[]}`, `{"docs":[{"text":"no oid"}]}`} {
		if w := postJSON(t, h, dist.PathNodeAddBatch, body); w.Code != http.StatusBadRequest {
			t.Fatalf("invalid batch %s = %d, want 400", body, w.Code)
		}
	}
	// Plan search over the node protocol: degenerate plans are 200
	// (LocalNode transparency), budgeted plans report quality.
	w = postJSON(t, h, dist.PathNodeSearch,
		`{"query":"seles match","plan":{"n":5,"frags":4,"budget":4},"stats":{"df":{"sele":1,"match":1},"total_df":5,"docs":2}}`)
	if w.Code != http.StatusOK {
		t.Fatalf("node search = %d: %s", w.Code, w.Body)
	}
	var resp dist.SearchPlanResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) == 0 || resp.Quality.Value != 1.0 {
		t.Fatalf("node search response = %+v", resp)
	}
	if w := postJSON(t, h, dist.PathNodeSearch, `{"query":"","plan":{"n":0},"stats":{}}`); w.Code != http.StatusOK {
		t.Fatalf("degenerate node search = %d, want 200", w.Code)
	}
}

// --- durability & replication ---

// TestNodeSnapshotEndpoint: POST /node/snapshot persists the fragment,
// /node/load reports the snapshot time, and a "restarted" node built
// from the snapshot file serves byte-identical rankings.
func TestNodeSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	ix := ir.NewIndex()
	ns := NewNodeServer(ix, &NodeConfig{DataDir: dir})
	h := ns.Handler()
	texts := []string{"melbourne champion trophy", "champion winner serve", "volley smash rally"}
	for i, text := range texts {
		w := postJSON(t, h, dist.PathNodeAdd, fmt.Sprintf(`{"doc":%d,"text":%q}`, i+1, text))
		if w.Code != http.StatusOK {
			t.Fatalf("add = %d: %s", w.Code, w.Body)
		}
	}
	w := postJSON(t, h, dist.PathNodeSnapshot, `{}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/node/snapshot = %d: %s", w.Code, w.Body)
	}
	var snap dist.SnapshotResponse
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Docs != len(texts) || snap.Bytes == 0 || snap.Unix == 0 {
		t.Fatalf("snapshot response = %+v", snap)
	}
	var load dist.LoadResponse
	if err := json.Unmarshal(get(t, h, dist.PathNodeLoad).Body.Bytes(), &load); err != nil {
		t.Fatal(err)
	}
	if load.SnapshotUnix != snap.Unix {
		t.Fatalf("load.snapshot_unix = %d, want %d", load.SnapshotUnix, snap.Unix)
	}

	// "Restart": rebuild the node from the snapshot file alone.
	restored, err := persist.LoadIndex(snap.Path)
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewNodeHandler(restored, nil)
	body := `{"query":"champion","n":10,"stats":{"df":{"champion":2},"total_df":9,"docs":3}}`
	before := postJSON(t, h, dist.PathNodeTopN, body)
	after := postJSON(t, h2, dist.PathNodeTopN, body)
	if before.Code != http.StatusOK || after.Code != http.StatusOK {
		t.Fatalf("topn = %d / %d", before.Code, after.Code)
	}
	if before.Body.String() != after.Body.String() {
		t.Fatalf("restored ranking differs:\n pre: %s\npost: %s", before.Body, after.Body)
	}
}

// TestNodeSnapshotWithoutDataDir: a node running without durability
// answers 412 to POST (nowhere to persist) but still STREAMS its live
// state to GET — the resync transfer needs no data dir.
func TestNodeSnapshotWithoutDataDir(t *testing.T) {
	h := NewNodeHandler(ir.NewIndex(), nil)
	if w := postJSON(t, h, dist.PathNodeSnapshot, `{}`); w.Code != http.StatusPreconditionFailed {
		t.Fatalf("/node/snapshot = %d, want 412", w.Code)
	}
	w := get(t, h, dist.PathNodeSnapshot)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /node/snapshot = %d, want 200", w.Code)
	}
	if st, err := persist.Load(w.Body); err != nil || len(st.Docs) != 0 {
		t.Fatalf("streamed snapshot unusable: %v", err)
	}
}

// TestCoordinatorReplicaStats: /stats reports every replica of every
// partition — reachability, routing health, snapshot age — plus the
// cluster's cumulative failover/dropped counters; /search surfaces the
// failovers a degraded query needed while staying complete.
func TestCoordinatorReplicaStats(t *testing.T) {
	dir := t.TempDir()
	servers := make([]*httptest.Server, 2)
	nodes := make([]dist.Node, 2)
	for i := range servers {
		cfg := &NodeConfig{}
		if i == 0 {
			cfg.DataDir = dir
		}
		srv := httptest.NewServer(NewNodeHandler(ir.NewIndex(), cfg))
		t.Cleanup(srv.Close)
		servers[i] = srv
		nodes[i] = dist.NewRemoteNode(srv.URL, srv.Client())
	}
	cluster, err := dist.NewReplicatedCluster(nodes, 2, &dist.Options{NodeTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	h := co.Handler()
	for _, text := range []string{"melbourne champion trophy", "champion winner serve"} {
		if w := postJSON(t, h, "/add", fmt.Sprintf(`{"text":%q}`, text)); w.Code != http.StatusOK {
			t.Fatalf("/add = %d: %s", w.Code, w.Body)
		}
	}
	// Snapshot replica 0 so its age surfaces.
	if _, err := dist.NewRemoteNode(servers[0].URL, servers[0].Client()).Snapshot(context.Background()); err != nil {
		t.Fatal(err)
	}
	var st StatsResponse
	if err := json.Unmarshal(get(t, h, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	ixst := st.Indexes["a"]
	if ixst.Nodes != 1 || len(ixst.Groups) != 1 || len(ixst.Groups[0].Replicas) != 2 {
		t.Fatalf("index stats shape = %+v", ixst)
	}
	r0, r1 := ixst.Groups[0].Replicas[0], ixst.Groups[0].Replicas[1]
	if !r0.Reachable || !r1.Reachable || !r0.Healthy || !r1.Healthy {
		t.Fatalf("healthy replicas reported degraded: %+v %+v", r0, r1)
	}
	if r0.Docs != 2 || r1.Docs != 2 {
		t.Fatalf("replica docs = %d/%d, want 2/2 (write fan-out)", r0.Docs, r1.Docs)
	}
	if r0.SnapshotUnix == 0 || r0.SnapshotAgeSeconds < 0 {
		t.Fatalf("snapshotted replica reports no snapshot: %+v", r0)
	}
	if r1.SnapshotUnix != 0 {
		t.Fatalf("never-snapshotted replica reports one: %+v", r1)
	}

	// Kill the primary: /search stays complete but reports failovers,
	// and /stats shows the dead replica plus moved counters.
	servers[0].Close()
	cluster.InvalidateStats()
	w := postJSON(t, h, "/search", `{"query":"champion","n":5}`)
	if w.Code != http.StatusOK {
		t.Fatalf("post-kill /search = %d: %s", w.Code, w.Body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Complete || len(sr.Dropped) != 0 || len(sr.Results) == 0 {
		t.Fatalf("post-kill search degraded: %+v", sr)
	}
	if err := json.Unmarshal(get(t, h, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	ixst = st.Indexes["a"]
	if ixst.Failovers == 0 {
		t.Fatalf("failover counter = 0 after killing the primary: %+v", ixst)
	}
	if ixst.DroppedNodes != 0 {
		t.Fatalf("dropped counter moved with a live replica: %+v", ixst)
	}
	r0 = ixst.Groups[0].Replicas[0]
	if r0.Reachable || r0.Healthy {
		t.Fatalf("dead replica reported fine: %+v", r0)
	}
	if ixst.Docs != 2 {
		t.Fatalf("docs = %d, want 2 (served by the survivor)", ixst.Docs)
	}
}

// TestCoordinatorAddBatchOutcomes: /add/batch reports per-partition
// commit results — a dead partition's documents land in "failed"
// (retry-safe) while the healthy partition commits, and the response
// still carries every assigned oid.
func TestCoordinatorAddBatchOutcomes(t *testing.T) {
	servers := make([]*httptest.Server, 2)
	nodes := make([]dist.Node, 2)
	for i := range servers {
		srv := httptest.NewServer(NewNodeHandler(ir.NewIndex(), nil))
		t.Cleanup(srv.Close)
		servers[i] = srv
		nodes[i] = dist.NewRemoteNode(srv.URL, srv.Client())
	}
	cluster := dist.NewClusterOf(nodes, &dist.Options{NodeTimeout: 5 * time.Second})
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	h := co.Handler()

	// Healthy batch: per-partition outcomes all committed, no failed.
	w := postJSON(t, h, "/add/batch",
		`{"docs":[{"doc":1,"text":"melbourne champion"},{"doc":2,"text":"winner serve"},{"doc":3,"text":"volley smash"}]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("/add/batch = %d: %s", w.Code, w.Body)
	}
	var ok AddBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ok); err != nil {
		t.Fatal(err)
	}
	if len(ok.Partitions) != 2 || len(ok.Failed) != 0 || len(ok.Degraded) != 0 {
		t.Fatalf("healthy batch outcomes = %+v", ok)
	}
	for _, p := range ok.Partitions {
		if p.Committed != p.Replicas || p.Error != "" {
			t.Fatalf("healthy partition outcome = %+v", p)
		}
	}

	// Warm the global statistics while both partitions are alive, so
	// post-kill searches can degrade to the stale-stats path instead of
	// failing outright on a never-aggregated cluster.
	if w := postJSON(t, h, "/search", `{"query":"champion","n":5}`); w.Code != http.StatusOK {
		t.Fatalf("warm /search = %d: %s", w.Code, w.Body)
	}

	// Kill partition 1's only node: its documents come back in
	// "failed", partition 0's commit.
	servers[1].Close()
	w = postJSON(t, h, "/add/batch",
		`{"docs":[{"doc":11,"text":"trophy rally"},{"doc":12,"text":"ace court"}]}`)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("partial /add/batch = %d, want 502: %s", w.Code, w.Body)
	}
	var partial AddBatchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &partial); err != nil {
		t.Fatal(err)
	}
	// Round-robin: oid 11 -> partition 0 (alive), oid 12 -> partition 1 (dead).
	if len(partial.Docs) != 2 || partial.Docs[0] != 11 || partial.Docs[1] != 12 {
		t.Fatalf("assigned oids = %v", partial.Docs)
	}
	if len(partial.Failed) != 1 || partial.Failed[0] != 12 {
		t.Fatalf("failed docs = %v, want [12]", partial.Failed)
	}
	if len(partial.Degraded) != 0 {
		t.Fatalf("degraded = %v, want none (whole partition failed)", partial.Degraded)
	}
	if partial.Error == "" {
		t.Fatal("partial batch response has no error summary")
	}
	committed := false
	for _, p := range partial.Partitions {
		switch p.Partition {
		case 0:
			if p.Committed != 1 || p.Error != "" {
				t.Fatalf("alive partition outcome = %+v", p)
			}
			committed = true
		case 1:
			if p.Committed != 0 || p.Error == "" {
				t.Fatalf("dead partition outcome = %+v", p)
			}
		}
	}
	if !committed {
		t.Fatal("partition 0 outcome missing")
	}
	// Searches keep answering over the surviving partition, flagged as
	// degraded: stale statistics (re-aggregation needs the dead node)
	// and the dead partition dropped.
	w = postJSON(t, h, "/search", `{"query":"champion","n":10}`)
	if w.Code != http.StatusOK {
		t.Fatalf("post-partial-batch /search = %d: %s", w.Code, w.Body)
	}
	var sr SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Complete || !sr.StaleStats || len(sr.Dropped) != 1 || sr.Dropped[0] != 1 {
		t.Fatalf("post-partial-batch search not flagged degraded: %+v", sr)
	}
	if len(sr.Results) == 0 {
		t.Fatalf("no results from the surviving partition: %+v", sr)
	}
}

// TestCoordinatorAddPartialCommit: a single-document /add against a
// degraded replica group must not masquerade as "not indexed": the
// 502 body reports how many replicas committed so the client knows a
// blind retry would double-fold term frequencies.
func TestCoordinatorAddPartialCommit(t *testing.T) {
	servers := make([]*httptest.Server, 2)
	nodes := make([]dist.Node, 2)
	for i := range servers {
		srv := httptest.NewServer(NewNodeHandler(ir.NewIndex(), nil))
		t.Cleanup(srv.Close)
		servers[i] = srv
		nodes[i] = dist.NewRemoteNode(srv.URL, srv.Client())
	}
	cluster, err := dist.NewReplicatedCluster(nodes, 2, &dist.Options{NodeTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	h := co.Handler()

	w := postJSON(t, h, "/add", `{"doc":1,"text":"melbourne champion"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("healthy /add = %d: %s", w.Code, w.Body)
	}
	var added AddDocResponse
	if err := json.Unmarshal(w.Body.Bytes(), &added); err != nil {
		t.Fatal(err)
	}
	if added.Committed != 2 || added.Replicas != 2 || added.Degraded {
		t.Fatalf("healthy add outcome = %+v", added)
	}

	// One replica dead: 502, but the response says one replica HAS the
	// document (degraded), so the client must not re-post it.
	servers[1].Close()
	w = postJSON(t, h, "/add", `{"doc":2,"text":"winner serve"}`)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("degraded /add = %d, want 502: %s", w.Code, w.Body)
	}
	var degraded AddDocResponse
	if err := json.Unmarshal(w.Body.Bytes(), &degraded); err != nil {
		t.Fatal(err)
	}
	if degraded.Committed != 1 || degraded.Replicas != 2 || !degraded.Degraded || degraded.Error == "" {
		t.Fatalf("degraded add outcome = %+v", degraded)
	}
	// The degraded document is searchable via the survivor.
	w = postJSON(t, h, "/search", `{"query":"winner","n":5}`)
	var sr SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 1 || sr.Results[0].Doc != 2 {
		t.Fatalf("degraded doc not searchable: %+v", sr)
	}

	// Whole group dead: committed 0 — retry-safe (connection-level).
	servers[0].Close()
	w = postJSON(t, h, "/add", `{"doc":3,"text":"volley smash"}`)
	if w.Code != http.StatusBadGateway {
		t.Fatalf("dead-group /add = %d, want 502: %s", w.Code, w.Body)
	}
	var failed AddDocResponse
	if err := json.Unmarshal(w.Body.Bytes(), &failed); err != nil {
		t.Fatal(err)
	}
	if failed.Committed != 0 || failed.Degraded {
		t.Fatalf("dead-group add outcome = %+v", failed)
	}
}

// --- self-healing: snapshot streaming, restore, anti-entropy ---

// streamState GETs /node/snapshot and decodes the binary stream.
func streamState(t *testing.T, h http.Handler) *ir.IndexState {
	t.Helper()
	w := get(t, h, dist.PathNodeSnapshot)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /node/snapshot = %d: %s", w.Code, w.Body)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("snapshot content type = %q", ct)
	}
	st, err := persist.Load(w.Body)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestNodeSnapshotStreamAndRestore: the resync transfer pair — the
// state streamed by GET /node/snapshot installs via POST /node/restore
// on another node, which then serves byte-identical rankings; the
// restored node's /node/load reports the source's content checksum.
func TestNodeSnapshotStreamAndRestore(t *testing.T) {
	source := ir.NewIndex()
	for i, text := range []string{"melbourne champion trophy", "champion winner serve", "volley smash rally"} {
		source.Add(bat.OID(i+1), "u", text)
	}
	hSrc := NewNodeHandler(source, nil)
	st := streamState(t, hSrc)
	if len(st.Docs) != 3 {
		t.Fatalf("streamed %d docs, want 3", len(st.Docs))
	}

	hDst := NewNodeHandler(ir.NewIndex(), nil)
	var buf bytes.Buffer
	if err := persist.Save(&buf, st); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, dist.PathNodeRestore, &buf)
	req.Header.Set("Content-Type", "application/octet-stream")
	w := httptest.NewRecorder()
	hDst.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("POST /node/restore = %d: %s", w.Code, w.Body)
	}
	var rr dist.RestoreResponse
	if err := json.Unmarshal(w.Body.Bytes(), &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Docs != 3 || rr.Checksum == "" || rr.Checksum != st.Checksum() {
		t.Fatalf("restore response = %+v", rr)
	}
	var lr dist.LoadResponse
	if err := json.Unmarshal(get(t, hDst, dist.PathNodeLoad+"?fresh=1").Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Docs != 3 || lr.Checksum != rr.Checksum {
		t.Fatalf("restored load = %+v, want checksum %s", lr, rr.Checksum)
	}
	// The plain probe stays cheap: it serves the now-cached digest.
	if err := json.Unmarshal(get(t, hDst, dist.PathNodeLoad).Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Checksum != rr.Checksum {
		t.Fatalf("cached load checksum = %q, want %s", lr.Checksum, rr.Checksum)
	}
	body := `{"query":"champion","n":10,"stats":{"df":{"champion":2},"total_df":9,"docs":3}}`
	before := postJSON(t, hSrc, dist.PathNodeTopN, body)
	after := postJSON(t, hDst, dist.PathNodeTopN, body)
	if before.Body.String() != after.Body.String() {
		t.Fatalf("restored ranking differs:\n src: %s\n dst: %s", before.Body, after.Body)
	}
}

// TestNodeRestoreFailsClosed: corrupt bodies are rejected and the node
// keeps serving its previous fragment.
func TestNodeRestoreFailsClosed(t *testing.T) {
	ix := ir.NewIndex()
	ix.Add(1, "u", "champion trophy")
	h := NewNodeHandler(ix, nil)
	for name, body := range map[string]string{
		"garbage":   "not a snapshot",
		"truncated": "DLSNAP\x00\x01",
		"empty":     "",
	} {
		req := httptest.NewRequest(http.MethodPost, dist.PathNodeRestore, strings.NewReader(body))
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s restore = %d, want 400: %s", name, w.Code, w.Body)
		}
	}
	if w := get(t, h, dist.PathNodeRestore); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /node/restore = %d, want 405", w.Code)
	}
	// The fragment survived every rejected restore.
	var lr dist.LoadResponse
	if err := json.Unmarshal(get(t, h, dist.PathNodeLoad).Body.Bytes(), &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Docs != 1 {
		t.Fatalf("fragment lost after rejected restores: %+v", lr)
	}
}

// TestCoordinatorAntiEntropyEndpoint: POST /anti-entropy runs one pass
// — detection and repair — over a replicated cluster whose replica was
// wiped behind the coordinator's back, and /stats surfaces the
// checksums, resync age and the new counters.
func TestCoordinatorAntiEntropyEndpoint(t *testing.T) {
	servers := make([]*httptest.Server, 2)
	nodes := make([]dist.Node, 2)
	for i := range servers {
		servers[i] = httptest.NewServer(NewNodeHandler(ir.NewIndex(), nil))
		t.Cleanup(servers[i].Close)
		nodes[i] = dist.NewRemoteNode(servers[i].URL, servers[i].Client())
	}
	cluster, err := dist.NewReplicatedCluster(nodes, 2, &dist.Options{NodeTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	h := co.Handler()
	for _, text := range []string{"melbourne champion trophy", "champion winner serve"} {
		if w := postJSON(t, h, "/add", fmt.Sprintf(`{"text":%q}`, text)); w.Code != http.StatusOK {
			t.Fatalf("/add = %d: %s", w.Code, w.Body)
		}
	}
	pre := postJSON(t, h, "/search", `{"query":"champion","n":10}`)
	// Wipe replica 1 directly against its node server.
	if err := nodes[1].(*dist.RemoteNode).RestoreState(context.Background(), ir.NewIndex().ExportState()); err != nil {
		t.Fatal(err)
	}
	if w := postJSON(t, h, "/anti-entropy?repair=bogus", ``); w.Code != http.StatusBadRequest {
		t.Fatalf("bad repair param = %d", w.Code)
	}
	if w := postJSON(t, h, "/anti-entropy?index=nope", ``); w.Code != http.StatusNotFound {
		t.Fatalf("unknown index = %d", w.Code)
	}
	w := postJSON(t, h, "/anti-entropy", ``)
	if w.Code != http.StatusOK {
		t.Fatalf("/anti-entropy = %d: %s", w.Code, w.Body)
	}
	var ae AntiEntropyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ae); err != nil {
		t.Fatal(err)
	}
	pass := ae.Indexes["a"]
	if pass.Detected != 1 || pass.Resynced != 1 {
		t.Fatalf("anti-entropy pass = %+v", pass)
	}
	// A second pass is a no-op (and warms the healed replica's digest
	// cache, so the cheap /stats probe below reports its checksum).
	if err := json.Unmarshal(postJSON(t, h, "/anti-entropy", ``).Body.Bytes(), &ae); err != nil {
		t.Fatal(err)
	}
	if p := ae.Indexes["a"]; p.Detected != 0 || p.Resynced != 0 || p.Cleared != 0 {
		t.Fatalf("second pass not a no-op: %+v", p)
	}
	// Kill the intact replica: the healed one must serve the identical
	// ranking, complete.
	servers[0].Close()
	cluster.InvalidateStats()
	post := postJSON(t, h, "/search", `{"query":"champion","n":10}`)
	var preSR, postSR SearchResponse
	if err := json.Unmarshal(pre.Body.Bytes(), &preSR); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(post.Body.Bytes(), &postSR); err != nil {
		t.Fatal(err)
	}
	if !postSR.Complete {
		t.Fatalf("post-heal search degraded: %+v", postSR)
	}
	if len(postSR.Results) != len(preSR.Results) {
		t.Fatalf("post-heal results = %d, want %d", len(postSR.Results), len(preSR.Results))
	}
	for i := range preSR.Results {
		if postSR.Results[i] != preSR.Results[i] {
			t.Fatalf("post-heal rank %d = %+v, want %+v", i, postSR.Results[i], preSR.Results[i])
		}
	}
	var st StatsResponse
	if err := json.Unmarshal(get(t, h, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	ixst := st.Indexes["a"]
	if ixst.Resyncs != 1 || ixst.DivergenceDetected != 1 {
		t.Fatalf("stats counters = %+v", ixst)
	}
	healed := ixst.Groups[0].Replicas[1]
	if healed.Checksum == "" || healed.ResyncUnix == 0 || healed.ResyncAgeSeconds < 0 {
		t.Fatalf("healed replica stats = %+v", healed)
	}
	if healed.Diverged || !healed.Healthy {
		t.Fatalf("healed replica still quarantined: %+v", healed)
	}
}
