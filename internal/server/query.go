package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
	"dlsearch/internal/query"
)

// QueryRequest is the body of POST /query: one query in the paper's
// language (SELECT ... FROM ... WHERE ... LIMIT ...), evaluated
// against the coordinator's conceptual engine with every contains
// predicate fanned out over the cluster named by the predicate's
// "Class.attr" key. Frags/Budget/MinQuality override the
// coordinator's default evaluation plan for the unrestricted contains
// fan-outs, exactly as they do on /search; predicates under an
// a-priori conceptual restriction are always evaluated exactly.
type QueryRequest struct {
	Query      string   `json:"query"`
	Frags      *int     `json:"frags,omitempty"`
	Budget     *int     `json:"budget,omitempty"`
	MinQuality *float64 `json:"min_quality,omitempty"`
	// DisableRestriction turns the paper's a-priori optimization off
	// (rank the whole collection, filter late) — the experiment knob.
	DisableRestriction bool `json:"disable_restriction,omitempty"`
}

// ShotJSON is one matched video shot of a query row.
type ShotJSON struct {
	Begin   int  `json:"begin"`
	End     int  `json:"end"`
	Tennis  bool `json:"tennis"`
	Netplay bool `json:"netplay"`
}

// QueryRowJSON is one ranked result binding.
type QueryRowJSON struct {
	Values []string   `json:"values"`
	Score  float64    `json:"score"`
	Shots  []ShotJSON `json:"shots,omitempty"`
}

// QueryResponse answers POST /query. The degradation fields aggregate
// over every cluster fan-out the query's contains predicates needed
// (different predicates may hit different clusters, so partitions are
// counted, not listed): Complete is false when any fan-out dropped a
// partition, was answered by a diverged replica, or ranked under
// stale global statistics.
type QueryResponse struct {
	Columns    []string         `json:"columns"`
	Rows       []QueryRowJSON   `json:"rows"`
	Quality    dist.QualityJSON `json:"quality"`
	Dropped    int              `json:"dropped,omitempty"`
	Failovers  int              `json:"failovers,omitempty"`
	Diverged   int              `json:"diverged,omitempty"`
	StaleStats bool             `json:"stale_stats,omitempty"`
	Complete   bool             `json:"complete"`
}

// clusterErr marks a Rank failure caused by cluster unavailability, so
// the handler can answer 502 for it and 400 for semantic query errors.
type clusterErr struct{ err error }

func (e *clusterErr) Error() string { return e.err.Error() }
func (e *clusterErr) Unwrap() error { return e.err }

// clusterRanker implements query.ContentRanker over the coordinator's
// clusters: a contains predicate on "Class.attr" fans out over the
// index of that name through the exact machinery /search uses (plans,
// budgets, failover, tracing, wire codec).
//
// Predicates under an a-priori candidate restriction are evaluated by
// ranking the whole collection exactly and filtering the merged
// ranking to the candidates. That is byte-identical to the engine's
// local restricted ranking: per-document scores are independent of the
// candidate set, and the cluster merge and the local restricted top-n
// share one comparator (score desc, doc asc) — restricting before or
// after ranking selects the same documents with the same scores.
type clusterRanker struct {
	co   *Coordinator
	ctx  context.Context
	plan ir.EvalPlan // default plan for unrestricted fan-outs; N set per call

	counts map[string]int   // collection sizes, by index key
	errs   map[string]error // Collection probe failures, surfaced by Rank

	// Aggregated degradation across every fan-out of one query.
	dropped    int
	failovers  int
	diverged   int
	staleStats bool
}

func newClusterRanker(co *Coordinator, ctx context.Context, plan ir.EvalPlan) *clusterRanker {
	return &clusterRanker{
		co: co, ctx: ctx, plan: plan,
		counts: map[string]int{},
		errs:   map[string]error{},
	}
}

// Collection implements query.ContentRanker. A probe failure is
// remembered and surfaced by the following Rank call, which can
// return an error.
func (cr *clusterRanker) Collection(key string) (int, bool) {
	cluster := cr.co.indexes[key]
	if cluster == nil {
		return 0, false
	}
	if n, ok := cr.counts[key]; ok {
		return n, true
	}
	infos, err := cluster.NodeInfoContext(cr.ctx)
	if err != nil {
		cr.errs[key] = err
		return 0, true
	}
	n := 0
	for _, l := range infos {
		n += l.Docs
	}
	cr.counts[key] = n
	return n, true
}

// Rank implements query.ContentRanker.
func (cr *clusterRanker) Rank(key, text string, n int, candidates map[bat.OID]bool) ([]ir.Result, ir.QualityEstimate, error) {
	if err := cr.errs[key]; err != nil {
		return nil, ir.QualityEstimate{}, &clusterErr{fmt.Errorf("index %s: %w", key, err)}
	}
	cluster := cr.co.indexes[key]
	if cluster == nil {
		return nil, ir.QualityEstimate{}, fmt.Errorf("query: no cluster serves index %s", key)
	}
	if n <= 0 {
		return nil, ir.QualityEstimate{}, nil
	}
	plan := cr.plan
	if candidates == nil {
		plan.N = n
	} else {
		// Exact, unrestricted, over the whole collection; the merged
		// ranking is filtered to the candidates below. (A plan budget
		// never applies here: restricted predicates are always exact,
		// like the engine's local executor.)
		plan = ir.EvalPlan{N: cr.counts[key]}
		if plan.N < n {
			plan.N = n
		}
	}
	sr, err := cluster.SearchPlan(cr.ctx, text, plan)
	if err != nil {
		return nil, ir.QualityEstimate{}, &clusterErr{fmt.Errorf("index %s: %w", key, err)}
	}
	cr.dropped += len(sr.Dropped)
	cr.failovers += sr.FailoverTotal()
	cr.diverged += len(sr.Diverged)
	cr.staleStats = cr.staleStats || sr.StaleStats
	res := sr.Results
	if candidates != nil {
		kept := make([]ir.Result, 0, n)
		for _, r := range res {
			if candidates[r.Doc] {
				kept = append(kept, r)
				if len(kept) == n {
					break
				}
			}
		}
		res = kept
	}
	return res, sr.Quality, nil
}

// query serves POST /query: parse the conceptual query, execute its
// structural/conceptual/event predicates against the engine, and fan
// the contains predicates over the clusters.
func (co *Coordinator) query(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	tr := obs.NewTrace(r.Header.Get(obs.HeaderRequestID))
	w.Header().Set(obs.HeaderRequestID, tr.ID)
	if co.cfg.Engine == nil {
		co.errs.Add(1)
		fail(w, http.StatusNotFound, "no conceptual engine configured")
		return
	}
	parseStart := time.Now()
	var req QueryRequest
	if !readJSON(w, r, co.cfg.MaxBody, &req) {
		co.errs.Add(1)
		return
	}
	if req.Query == "" {
		co.errs.Add(1)
		fail(w, http.StatusBadRequest, "missing query")
		return
	}
	q, err := query.Parse(req.Query)
	if err != nil {
		co.errs.Add(1)
		fail(w, http.StatusBadRequest, err.Error())
		return
	}
	plan := ir.EvalPlan{
		Frags:      co.cfg.Frags,
		Budget:     co.cfg.FragBudget,
		MinQuality: co.cfg.MinQuality,
	}
	if req.Frags != nil {
		if *req.Frags < 0 {
			co.errs.Add(1)
			fail(w, http.StatusBadRequest, "frags must be non-negative")
			return
		}
		plan.Frags = *req.Frags
	}
	if req.Budget != nil {
		if *req.Budget < 0 {
			co.errs.Add(1)
			fail(w, http.StatusBadRequest, "budget must be non-negative")
			return
		}
		plan.Budget = *req.Budget
	}
	if req.MinQuality != nil {
		if *req.MinQuality < 0 || *req.MinQuality > 1 {
			co.errs.Add(1)
			fail(w, http.StatusBadRequest, "min_quality must be in [0, 1]")
			return
		}
		plan.MinQuality = *req.MinQuality
	}
	tr.AddSpan("parse", parseStart)
	ctx := obs.NewContext(r.Context(), tr)
	if co.cfg.SearchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, co.cfg.SearchTimeout)
		defer cancel()
	}
	execStart := time.Now()
	cr := newClusterRanker(co, ctx, plan)
	co.engineMu.RLock()
	// A streaming ingest in flight invalidates the engine's derived
	// access paths between its conceptual lines; executing now would
	// lazily rebuild them under the shared lock, racing with parallel
	// queries. Upgrade to the write lock and warm first. Loop: another
	// conceptual write can sneak in between the Unlock and the
	// re-acquired read lock and invalidate again.
	for !co.cfg.Engine.DB.Warmed() {
		co.engineMu.RUnlock()
		co.engineMu.Lock()
		co.cfg.Engine.DB.Warm()
		co.engineMu.Unlock()
		co.engineMu.RLock()
	}
	ex := query.NewExecutor(co.cfg.Engine.DB)
	ex.Ranker = cr
	ex.DisableRestriction = req.DisableRestriction
	res, err := ex.Run(q)
	co.engineMu.RUnlock()
	tr.AddSpan("execute", execStart)
	if err != nil {
		co.errs.Add(1)
		co.observeQuery(tr, &req, nil, ex)
		var ce *clusterErr
		if errors.As(err, &ce) {
			fail(w, http.StatusBadGateway, "cluster unavailable: "+err.Error())
		} else {
			fail(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	co.queries.Add(1)
	resp := QueryResponse{
		Columns:    res.Columns,
		Rows:       make([]QueryRowJSON, len(res.Rows)),
		Quality:    dist.QualityToJSON(ex.Quality),
		Dropped:    cr.dropped,
		Failovers:  cr.failovers,
		Diverged:   cr.diverged,
		StaleStats: cr.staleStats,
		Complete:   cr.dropped == 0 && cr.diverged == 0 && !cr.staleStats,
	}
	for i, row := range res.Rows {
		rj := QueryRowJSON{Values: row.Values, Score: row.Score}
		for _, s := range row.Shots {
			rj.Shots = append(rj.Shots, ShotJSON{Begin: s.Begin, End: s.End, Tennis: s.Tennis, Netplay: s.Netplay})
		}
		resp.Rows[i] = rj
	}
	writeJSON(w, http.StatusOK, resp)
	co.observeQuery(tr, &req, res, ex)
}

// observeQuery records one finished /query into the latency histogram
// and, when configured, the slow-query log. res is nil for a failed
// query (latency still observed).
func (co *Coordinator) observeQuery(tr *obs.Trace, req *QueryRequest, res *query.Result, ex *query.Executor) {
	took := tr.Elapsed()
	if h := co.queryLatency; h != nil {
		h.Observe(took.Seconds())
	}
	rec := obs.SlowQueryRecord{
		Role:  "coordinator",
		Index: "(conceptual)",
		Query: req.Query,
	}
	if res != nil {
		rec.Quality = ex.Quality.Value()
		rec.Results = len(res.Rows)
	}
	co.cfg.SlowQuery.Record(tr, rec)
}
