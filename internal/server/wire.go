package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
	"dlsearch/internal/persist"
)

// The node server's binary wire support, in two layers mirroring the
// client:
//
//   - content negotiation on the ordinary HTTP endpoints: a request
//     whose Content-Type is the wire media type is decoded as a framed
//     binary message (failing closed with a 4xx — a corrupt frame is
//     never partially applied), and a request whose Accept includes it
//     gets a framed binary response;
//   - the persistent-connection transport: GET /node/wire with
//     Upgrade: dlwire hijacks the connection and serves framed RPCs on
//     it until the peer hangs up or goes idle — the per-query HTTP
//     overhead disappears from the hot path.
//
// A node started JSON-only answers 415 to binary bodies and does not
// register the upgrade endpoint, so clients negotiate down cleanly.

// wireIdleTimeout is how long an upgraded connection may sit between
// RPCs before the server reclaims it; clients redial transparently.
const wireIdleTimeout = 2 * time.Minute

// wireWriteTimeout bounds writing one response frame.
const wireWriteTimeout = 30 * time.Second

// isWireRequest reports whether the request body is a framed binary
// wire message.
func isWireRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return strings.HasPrefix(ct, persist.WireContentType)
}

// wantsWire reports whether the client asked for a framed binary
// response.
func wantsWire(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), persist.WireContentType)
}

// bodyBufPool pools request-body read buffers for the binary endpoints.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBody = 1 << 20

// readWireBody reads the whole framed request body into a pooled
// buffer, answering 413 itself when the cap is hit. Call release once
// every slice derived from the body is dead (the wire decoders copy
// all strings out, so decode-then-release is safe).
func readWireBody(w http.ResponseWriter, r *http.Request, maxBody int64) (body []byte, release func(), ok bool) {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	release = func() {
		if buf.Cap() <= maxPooledBody {
			bodyBufPool.Put(buf)
		}
	}
	rb := http.MaxBytesReader(w, r.Body, maxBody)
	if _, err := buf.ReadFrom(rb); err != nil {
		release()
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			fail(w, http.StatusRequestEntityTooLarge, "request body too large")
		} else {
			fail(w, http.StatusBadRequest, "read body: "+err.Error())
		}
		return nil, nil, false
	}
	return buf.Bytes(), release, true
}

// writeWire sends one framed binary message as a 200 response.
func writeWire(w http.ResponseWriter, wb *persist.WireBuffer) {
	if err := wb.Err(); err != nil {
		fail(w, http.StatusInternalServerError, "encode response: "+err.Error())
		return
	}
	h := w.Header()
	h.Set("Content-Type", persist.WireContentType)
	w.WriteHeader(http.StatusOK)
	w.Write(wb.Bytes())
}

// failWireDisabled answers a binary request on a JSON-only node.
func failWireDisabled(w http.ResponseWriter) {
	fail(w, http.StatusUnsupportedMediaType,
		"this node serves the JSON codec only (started with -wire=json)")
}

// wireUpgrade serves GET /node/wire: upgrade the connection to the
// persistent framed-RPC transport. Registered outside the request
// semaphore — the connection is long-lived; each RPC on it acquires a
// slot like an HTTP request would, so saturation sheds RPCs (a framed
// 503), not connections.
func (s *NodeServer) wireUpgrade(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if !strings.EqualFold(r.Header.Get("Upgrade"), persist.WireProtocol) {
		w.Header().Set("Upgrade", persist.WireProtocol)
		fail(w, http.StatusUpgradeRequired, "upgrade to "+persist.WireProtocol+" required")
		return
	}
	if n := s.wireConns.Add(1); n > int64(s.maxConc) {
		s.wireConns.Add(-1)
		fail(w, http.StatusServiceUnavailable, "wire connection limit reached")
		return
	}
	defer s.wireConns.Add(-1)
	hj, ok := w.(http.Hijacker)
	if !ok {
		fail(w, http.StatusInternalServerError, "connection cannot be hijacked")
		return
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		fail(w, http.StatusInternalServerError, "hijack: "+err.Error())
		return
	}
	defer conn.Close()
	s.trackWireConn(conn, r)
	defer s.untrackWireConn(conn)
	conn.SetWriteDeadline(time.Now().Add(wireWriteTimeout))
	if _, err := io.WriteString(conn, "HTTP/1.1 101 Switching Protocols\r\nUpgrade: "+
		persist.WireProtocol+"\r\nConnection: Upgrade\r\n\r\n"); err != nil {
		return
	}
	s.serveWire(conn, rw.Reader)
}

// trackWireConn records a live upgraded connection and, once per
// owning http.Server, hooks that server's graceful shutdown to close
// the whole set: hijacking removed the conn from the server's own
// bookkeeping, so without the hook Shutdown would return while wire
// conns (and their serve goroutines) live on.
func (s *NodeServer) trackWireConn(c net.Conn, r *http.Request) {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if s.wireLive == nil {
		s.wireLive = make(map[net.Conn]struct{})
	}
	s.wireLive[c] = struct{}{}
	if srv, ok := r.Context().Value(http.ServerContextKey).(*http.Server); ok && srv != nil && !s.wireSrvs[srv] {
		if s.wireSrvs == nil {
			s.wireSrvs = make(map[*http.Server]bool)
		}
		s.wireSrvs[srv] = true
		srv.RegisterOnShutdown(s.closeWireConns)
	}
}

func (s *NodeServer) untrackWireConn(c net.Conn) {
	s.wireMu.Lock()
	delete(s.wireLive, c)
	s.wireMu.Unlock()
}

// closeWireConns force-closes every live upgraded connection; their
// serve loops exit on the next read.
func (s *NodeServer) closeWireConns() {
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	for c := range s.wireLive {
		c.Close()
	}
}

// serveWire answers framed RPCs on one upgraded connection until the
// peer hangs up, goes idle past the timeout, or breaks framing (a
// stream that lost sync cannot be trusted further — it closes; a
// well-framed message that fails verification gets an error frame and
// the connection lives on).
func (s *NodeServer) serveWire(conn net.Conn, br *bufio.Reader) {
	var scratch []byte
	wb := persist.GetWireBuffer()
	defer persist.PutWireBuffer(wb)
	for {
		conn.SetReadDeadline(time.Now().Add(wireIdleTimeout))
		frame, err := persist.ReadWireFrame(br, int(s.maxBody), scratch)
		if err != nil {
			return
		}
		scratch = frame
		s.handleWireFrame(frame, wb)
		conn.SetWriteDeadline(time.Now().Add(wireWriteTimeout))
		if err := wb.Err(); err != nil {
			return
		}
		if _, err := conn.Write(wb.Bytes()); err != nil {
			return
		}
	}
}

// handleWireFrame serves one framed RPC, encoding the response (data
// or a framed error) into wb. The request semaphore bounds RPC
// concurrency exactly like it bounds HTTP requests.
func (s *NodeServer) handleWireFrame(frame []byte, wb *persist.WireBuffer) {
	ctx := context.Background()
	kind := persist.WirePeekKind(frame)
	m := s.wireMet[kind]
	if m.count != nil {
		m.count.Inc()
	}
	start := time.Time{}
	if m.lat != nil {
		start = time.Now()
	}
	switch kind {
	case persist.WireTopNRequest:
		query, n, stats, err := persist.DecodeTopNRequest(frame, &s.statsCache)
		if err != nil {
			wb.EncodeError(http.StatusBadRequest, "unusable wire body: "+err.Error())
			break
		}
		if !s.sem.TryAcquire() {
			wb.EncodeError(http.StatusServiceUnavailable, "server at capacity")
			break
		}
		res, _ := s.node.TopNWithStats(ctx, query, n, stats)
		s.sem.Release()
		wb.EncodeTopNResponse(res)
	case persist.WireSearchRequest:
		query, plan, stats, err := persist.DecodeSearchRequest(frame, &s.statsCache)
		if err != nil {
			wb.EncodeError(http.StatusBadRequest, "unusable wire body: "+err.Error())
			break
		}
		if !s.sem.TryAcquire() {
			wb.EncodeError(http.StatusServiceUnavailable, "server at capacity")
			break
		}
		res, est, _ := s.node.SearchPlan(ctx, query, plan, stats)
		s.sem.Release()
		wb.EncodeSearchResponse(res, est)
	case persist.WireStatsRequest:
		if err := persist.DecodeStatsRequest(frame); err != nil {
			wb.EncodeError(http.StatusBadRequest, "unusable wire body: "+err.Error())
			break
		}
		st, _ := s.node.Stats(ctx)
		wb.EncodeStatsResponse(st)
	case persist.WireAddBatchRequest:
		ops, err := persist.DecodeAddBatchRequest(frame)
		if err != nil {
			wb.EncodeError(http.StatusBadRequest, "unusable wire body: "+err.Error())
			break
		}
		docs, errmsg := batchDocs(ops)
		if errmsg != "" {
			wb.EncodeError(http.StatusBadRequest, errmsg)
			break
		}
		if !s.sem.TryAcquire() {
			wb.EncodeError(http.StatusServiceUnavailable, "server at capacity")
			break
		}
		err = s.node.AddBatch(ctx, docs)
		s.sem.Release()
		if err != nil {
			wb.EncodeError(http.StatusBadGateway, "batch add failed: "+err.Error())
			break
		}
		wb.EncodeAck()
	default:
		wb.EncodeError(http.StatusBadRequest, "unsupported wire message kind")
	}
	if m.lat != nil {
		m.lat.ObserveSince(start)
	}
}

// batchDocs validates and converts a decoded wire batch, mirroring
// the JSON handler's checks.
func batchDocs(ops []persist.Op) ([]dist.Doc, string) {
	if len(ops) == 0 {
		return nil, "empty batch"
	}
	docs := make([]dist.Doc, len(ops))
	for i := range ops {
		if ops[i].Doc == 0 {
			return nil, "missing document oid in batch"
		}
		docs[i] = dist.Doc{OID: bat.OID(ops[i].Doc), URL: ops[i].URL, Text: ops[i].Text}
	}
	return docs, ""
}

// wireEndpointMetrics is the conn-transport twin of instrument():
// the same per-endpoint counters and latency histograms the HTTP
// handlers feed, so /metrics does not go blind when the hot path
// leaves HTTP.
type wireEndpointMetrics struct {
	count *obs.Counter
	lat   *obs.Histogram
}

func (s *NodeServer) initWireMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s.wireMet = make(map[persist.WireKind]wireEndpointMetrics, 4)
	for kind, path := range map[persist.WireKind]string{
		persist.WireTopNRequest:     dist.PathNodeTopN,
		persist.WireSearchRequest:   dist.PathNodeSearch,
		persist.WireStatsRequest:    dist.PathNodeStats,
		persist.WireAddBatchRequest: dist.PathNodeAddBatch,
	} {
		s.wireMet[kind] = wireEndpointMetrics{
			count: reg.Counter("dl_node_requests_total",
				"Node requests served, by endpoint.", obs.Labels("path", path)),
			lat: reg.Histogram("dl_node_request_seconds",
				"Node request handling time, by endpoint.",
				obs.Labels("path", path), obs.LatencyBounds()),
		}
	}
}

// decodeStats is the per-endpoint wire decode for /node/topn.
func (s *NodeServer) decodeWireTopN(w http.ResponseWriter, r *http.Request) (query string, n int, stats ir.Stats, ok bool) {
	body, release, k := readWireBody(w, r, s.maxBody)
	if !k {
		return "", 0, ir.Stats{}, false
	}
	query, n, stats, err := persist.DecodeTopNRequest(body, &s.statsCache)
	release()
	if err != nil {
		fail(w, http.StatusBadRequest, "unusable wire body: "+err.Error())
		return "", 0, ir.Stats{}, false
	}
	return query, n, stats, true
}

// decodeWireSearch is the per-endpoint wire decode for /node/search.
func (s *NodeServer) decodeWireSearch(w http.ResponseWriter, r *http.Request) (query string, plan ir.EvalPlan, stats ir.Stats, ok bool) {
	body, release, k := readWireBody(w, r, s.maxBody)
	if !k {
		return "", ir.EvalPlan{}, ir.Stats{}, false
	}
	query, plan, stats, err := persist.DecodeSearchRequest(body, &s.statsCache)
	release()
	if err != nil {
		fail(w, http.StatusBadRequest, "unusable wire body: "+err.Error())
		return "", ir.EvalPlan{}, ir.Stats{}, false
	}
	return query, plan, stats, true
}
