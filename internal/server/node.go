package server

import (
	"errors"
	"net"
	"net/http"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/core"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
	"dlsearch/internal/persist"
)

// NodeConfig tunes a node server. The zero value selects the package
// defaults, no query cache and no durability.
type NodeConfig struct {
	MaxBody       int64 // request-body cap, bytes
	MaxConcurrent int   // in-flight request bound
	// Cache caches (query → term oids) resolutions AND whole RES sets
	// (query → ranking, top-N-aware) for this node's query endpoints.
	Cache *core.QueryCache
	// MemoryBudget, when positive, bounds the resident bytes of the
	// index's plain posting columns; cold low-idf lists are held
	// compressed (ir.SetMemoryBudget).
	MemoryBudget int
	// DataDir, when set, enables durability: POST /node/snapshot
	// persists the fragment to DataDir/index.snap (atomic write), and
	// the owning process snapshots on graceful shutdown via
	// NodeServer.Snapshot. Restore-on-boot happens before the server
	// exists (persist.LoadIndex in cmd/dlserve), so a handler is never
	// constructed over a partially restored index.
	DataDir string
	// MaxRestoreBody caps POST /node/restore bodies (0 selects
	// DefaultMaxRestoreBody). Restores ship whole fragment snapshots,
	// so they are capped independently of MaxBody.
	MaxRestoreBody int64
	// OpLog, when set, attaches a write-ahead op log: ingest appends
	// durably before applying, GET/POST /node/oplog serve the delta
	// resync protocol, and a successful snapshot compacts the log up
	// to the snapshot's recorded position. The caller opens (and
	// replays) the log BEFORE constructing the server — boot recovery
	// is snapshot + replay, and the handler must never serve a
	// half-replayed index.
	OpLog *persist.OpLog
	// Metrics, when set, receives the node's serving telemetry —
	// per-endpoint request counters and latency histograms, local
	// scoring time, ingested documents, op-log append/fsync durations,
	// Go runtime gauges — served in Prometheus text format on
	// GET /metrics (outside the concurrency semaphore). nil disables
	// both the instrumentation and the endpoint; the query hot path
	// then stays byte-identical to an uninstrumented server.
	Metrics *obs.Registry
	// SlowQuery, when set, emits one JSON line per /node/topn or
	// /node/search slower than its threshold, carrying the
	// coordinator's request ID (X-DL-Request) so node-side lines join
	// the coordinator's. nil disables.
	SlowQuery *obs.SlowQueryLog
	// JSONOnly disables the binary wire codec: binary request bodies
	// answer 415 and the /node/wire upgrade endpoint is absent, so a
	// negotiating client settles on JSON. The debugging mode, and the
	// stand-in for a third-party JSON node in mixed-codec tests.
	JSONOnly bool
	// Backend, when set, is the search backend this node serves instead
	// of a bare index — e.g. core.NewEngineBackend, so the partition
	// hosts a full conceptual engine behind the same wire protocol. The
	// ix argument of NewNodeServer is ignored in favour of the
	// backend's content index.
	Backend dist.SearchBackend
}

// NodeServer serves one shared-nothing index fragment over the node
// wire protocol and owns its durability hooks. All index access goes
// through a dist.LocalNode, which arbitrates the one-writer rule
// (adds, freezes and state exports exclusive, queries shared) and runs
// the cached-resolution top-N path — the handler itself only speaks
// JSON and validates.
type NodeServer struct {
	node       *dist.LocalNode
	maxBody    int64
	maxRestore int64
	maxConc    int
	dataDir    string
	oplog      *persist.OpLog
	snapMu     sync.Mutex // serialises snapshot writes

	// sem bounds in-flight work across both transports: HTTP requests
	// and framed RPCs on upgraded connections draw from the same pool.
	sem *semaphore
	// jsonOnly disables the binary codec (NodeConfig.JSONOnly).
	jsonOnly bool
	// statsCache interns the decoded global-statistics block binary
	// requests carry — identical between ingests, decoded once.
	statsCache persist.WireStatsCache
	// wireConns counts live upgraded connections (capped at maxConc).
	wireConns atomic.Int64
	// wireMu guards the live upgraded-connection set and the servers
	// whose graceful shutdown has been hooked to reap it: a hijacked
	// conn leaves the http.Server's bookkeeping, so Shutdown would
	// otherwise leave wire conns (and their serve goroutines) alive.
	wireMu   sync.Mutex
	wireLive map[net.Conn]struct{}
	wireSrvs map[*http.Server]bool
	// wireMet mirrors the per-endpoint HTTP instrumentation for framed
	// RPCs; nil when uninstrumented.
	wireMet map[persist.WireKind]wireEndpointMetrics

	reg     *obs.Registry     // nil = uninstrumented
	slow    *obs.SlowQueryLog // nil = no slow-query log
	scoring *obs.Histogram    // local scoring time, shared with the LocalNode
}

// NewNodeServer builds the node server for ix. A nil cfg selects
// defaults. If the index was restored from a snapshot, pass the
// restore time through MarkRestored so /node/load reports a snapshot
// age instead of "never".
func NewNodeServer(ix *ir.Index, cfg *NodeConfig) *NodeServer {
	backend := dist.SearchBackend(nil)
	if cfg != nil && cfg.Backend != nil {
		backend = cfg.Backend
		ix = backend.ContentIndex()
	} else {
		backend = dist.NewIndexBackend(ix)
	}
	s := &NodeServer{
		node:       dist.NewLocalNodeBackend(backend),
		maxBody:    DefaultMaxBody,
		maxRestore: DefaultMaxRestoreBody,
		maxConc:    DefaultMaxConcurrent,
	}
	if cfg != nil {
		if cfg.MaxBody > 0 {
			s.maxBody = cfg.MaxBody
		}
		if cfg.MaxRestoreBody > 0 {
			s.maxRestore = cfg.MaxRestoreBody
		}
		if cfg.MaxConcurrent > 0 {
			s.maxConc = cfg.MaxConcurrent
		}
		if cfg.Cache != nil {
			s.node.SetResolver(cfg.Cache.Resolve)
			s.node.SetRankingCache(cfg.Cache)
		}
		if cfg.MemoryBudget > 0 {
			ix.SetMemoryBudget(cfg.MemoryBudget)
		}
		s.dataDir = cfg.DataDir
		if cfg.OpLog != nil {
			s.oplog = cfg.OpLog
			s.node.SetOpLog(cfg.OpLog)
		}
		s.jsonOnly = cfg.JSONOnly
		s.slow = cfg.SlowQuery
		if reg := cfg.Metrics; reg != nil {
			s.reg = reg
			reg.RegisterRuntimeGauges()
			reg.GaugeFunc("dl_node_backend_info",
				"Constant 1, labelled with the kind of search backend this node serves.",
				obs.Labels("kind", backend.Kind()), func() float64 { return 1 })
			s.scoring = reg.Histogram("dl_node_scoring_seconds",
				"Local query evaluation (scoring) time.", "", obs.LatencyBounds())
			s.node.SetMetrics(&dist.NodeMetrics{
				Scoring: s.scoring,
				IngestDocs: reg.Counter("dl_node_ingest_docs_total",
					"Documents freshly indexed on this node (retried duplicates excluded).", ""),
			})
			// Per-fragment cost accounting: postings evaluated per idf
			// fragment (fragment 0 holds the rarest terms). The fragment
			// count is only known after the first budgeted evaluation, so
			// the counters register lazily at scrape time — registration
			// is idempotent per label set.
			reg.OnScrape(func() {
				for i := range ix.FragmentPostings() {
					frag := i
					reg.CounterFunc("dl_node_frag_postings_total",
						"Postings evaluated per idf fragment (frag 0 = rarest terms); shows where the budget cut lands.",
						obs.Labels("frag", strconv.Itoa(frag)), func() uint64 {
							if fp := ix.FragmentPostings(); frag < len(fp) {
								return uint64(fp[frag])
							}
							return 0
						})
				}
			})
			if s.oplog != nil {
				s.oplog.Instrument(
					reg.Histogram("dl_oplog_append_seconds",
						"Durable op-log append time, end to end.", "", obs.LatencyBounds()),
					reg.Histogram("dl_oplog_fsync_seconds",
						"The fsync inside each op-log append.", "", obs.LatencyBounds()),
				)
			}
		}
	}
	s.sem = newSemaphore(s.maxConc)
	if !s.jsonOnly {
		s.initWireMetrics(s.reg)
	}
	return s
}

// Handler returns the HTTP handler serving the node wire protocol:
// POST /node/add, /node/add/batch, /node/topn, /node/search,
// /node/snapshot (persist to disk), /node/restore (replace the
// fragment), GET /node/stats, /node/load, /node/snapshot (stream the
// live fragment state), /healthz.
func (s *NodeServer) Handler() http.Handler {
	mux := http.NewServeMux()
	for path, h := range map[string]http.HandlerFunc{
		dist.PathNodeAdd:      s.add,
		dist.PathNodeAddBatch: s.addBatch,
		dist.PathNodeStats:    s.stats,
		dist.PathNodeTopN:     s.topn,
		dist.PathNodeSearch:   s.search,
		dist.PathNodeLoad:     s.load,
		dist.PathNodeSnapshot: s.snapshot,
		dist.PathNodeRestore:  s.restore,
		dist.PathNodeOpLog:    s.oplogHandler,
	} {
		mux.HandleFunc(path, s.instrument(path, h))
	}
	// The health probe bypasses the semaphore: a saturated node is
	// busy, not dead, and must not be ejected by its load balancer.
	// /metrics does too — a saturated node is when its telemetry
	// matters most.
	outer := http.NewServeMux()
	outer.HandleFunc(dist.PathHealthz, s.healthz)
	if s.reg != nil {
		outer.Handle("/metrics", s.reg.Handler())
	}
	if !s.jsonOnly {
		// The upgrade endpoint holds its connection open for the life of
		// the transport, so it lives outside the request semaphore; each
		// framed RPC on the connection acquires a slot instead.
		outer.HandleFunc(dist.PathNodeWire, s.wireUpgrade)
	}
	outer.Handle("/", s.sem.wrap(mux))
	return outer
}

// instrument wraps a handler with a per-endpoint request counter and
// latency histogram. Without a registry the handler is returned
// unchanged, so the uninstrumented serving path is byte-identical to
// the pre-instrumentation one.
func (s *NodeServer) instrument(path string, h http.HandlerFunc) http.HandlerFunc {
	if s.reg == nil {
		return h
	}
	count := s.reg.Counter("dl_node_requests_total",
		"Node requests served, by endpoint.", obs.Labels("path", path))
	lat := s.reg.Histogram("dl_node_request_seconds",
		"Node request handling time, by endpoint.",
		obs.Labels("path", path), obs.LatencyBounds())
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		count.Inc()
		h(w, r)
		lat.ObserveSince(start)
	}
}

// queryTrace builds the node-side trace for a query endpoint: created
// only when the coordinator sent a request ID (X-DL-Request) or a
// slow-query log wants spans, so the untraced hot path allocates
// nothing. The ID is echoed in the response headers.
func (s *NodeServer) queryTrace(w http.ResponseWriter, r *http.Request) *obs.Trace {
	id := r.Header.Get(obs.HeaderRequestID)
	if id == "" && s.slow == nil {
		return nil
	}
	tr := obs.NewTrace(id)
	w.Header().Set(obs.HeaderRequestID, tr.ID)
	return tr
}

// NewNodeHandler returns the HTTP handler serving ix as a remote
// cluster node — the historical constructor, for callers that need no
// durability hooks. A nil cfg selects defaults.
func NewNodeHandler(ix *ir.Index, cfg *NodeConfig) http.Handler {
	return NewNodeServer(ix, cfg).Handler()
}

// MarkRestored records that the served index was restored from a
// snapshot persisted at unix, so snapshot age starts from the restored
// snapshot instead of "never".
func (s *NodeServer) MarkRestored(unix int64) { s.node.MarkSnapshot(unix) }

// Snapshot persists the node's fragment to its data dir: the state is
// exported under the node's write lock (a consistent cut — concurrent
// adds wait, queries drain first) and written atomically. Returns
// metadata about the written snapshot. Fails when the server was
// built without a data dir.
func (s *NodeServer) Snapshot() (dist.SnapshotResponse, error) {
	if s.dataDir == "" {
		return dist.SnapshotResponse{}, errNoDataDir
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	start := time.Now()
	st := s.node.ExportState()
	path := persist.SnapshotPath(s.dataDir)
	if err := persist.SaveFile(path, st); err != nil {
		return dist.SnapshotResponse{}, err
	}
	now := time.Now()
	s.node.MarkSnapshot(now.Unix())
	if s.oplog != nil {
		// The snapshot covers every operation up to its recorded
		// position — the log prefix below it is now redundant and
		// compacts away, which is what keeps the log (and boot-time
		// replay) bounded by the snapshot INTERVAL instead of the
		// node's whole history. A failed compaction costs only disk
		// and replay time, never correctness: replay is idempotent.
		_ = s.oplog.Compact(st.LogPos)
	}
	resp := dist.SnapshotResponse{
		Path:     path,
		Docs:     len(st.Docs),
		Terms:    len(st.Terms),
		TookMS:   now.Sub(start).Milliseconds(),
		Unix:     now.Unix(),
		Checksum: st.Checksum(),
	}
	if fi, err := os.Stat(path); err == nil {
		resp.Bytes = fi.Size()
	}
	return resp, nil
}

// errNoDataDir reports a snapshot request against a node running
// without durability.
var errNoDataDir = errors.New("node runs without -data-dir: nowhere to snapshot")

func (s *NodeServer) add(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req dist.AddRequest
	if !readJSON(w, r, s.maxBody, &req) {
		return
	}
	if req.Doc == 0 {
		fail(w, http.StatusBadRequest, "missing document oid")
		return
	}
	s.node.Add(r.Context(), bat.OID(req.Doc), req.URL, req.Text)
	writeJSON(w, http.StatusOK, struct{}{})
}

func (s *NodeServer) addBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var docs []dist.Doc
	if isWireRequest(r) {
		if s.jsonOnly {
			failWireDisabled(w)
			return
		}
		body, release, ok := readWireBody(w, r, s.maxBody)
		if !ok {
			return
		}
		ops, err := persist.DecodeAddBatchRequest(body)
		release()
		if err != nil {
			// Fails closed: a truncated or bit-flipped batch decodes to an
			// error, never to a prefix of itself — nothing was applied.
			fail(w, http.StatusBadRequest, "unusable wire body: "+err.Error())
			return
		}
		var errmsg string
		if docs, errmsg = batchDocs(ops); errmsg != "" {
			fail(w, http.StatusBadRequest, errmsg)
			return
		}
	} else {
		var req dist.AddBatchRequest
		if !readJSON(w, r, s.maxBody, &req) {
			return
		}
		if len(req.Docs) == 0 {
			fail(w, http.StatusBadRequest, "empty batch")
			return
		}
		docs = make([]dist.Doc, len(req.Docs))
		for i, d := range req.Docs {
			if d.Doc == 0 {
				fail(w, http.StatusBadRequest, "missing document oid in batch")
				return
			}
			docs[i] = dist.Doc{OID: bat.OID(d.Doc), URL: d.URL, Text: d.Text}
		}
	}
	if err := s.node.AddBatch(r.Context(), docs); err != nil {
		fail(w, http.StatusBadGateway, "batch add failed: "+err.Error())
		return
	}
	if !s.jsonOnly && wantsWire(r) {
		wb := persist.GetWireBuffer()
		wb.EncodeAck()
		writeWire(w, wb)
		persist.PutWireBuffer(wb)
	} else {
		writeJSON(w, http.StatusOK, struct{}{})
	}
}

func (s *NodeServer) stats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	st, _ := s.node.Stats(r.Context())
	if !s.jsonOnly && wantsWire(r) {
		wb := persist.GetWireBuffer()
		wb.EncodeStatsResponse(st)
		writeWire(w, wb)
		persist.PutWireBuffer(wb)
		return
	}
	writeJSON(w, http.StatusOK, dist.StatsToJSON(st))
}

func (s *NodeServer) topn(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	// Decode by Content-Type…
	var (
		query string
		n     int
		stats ir.Stats
	)
	if isWireRequest(r) {
		if s.jsonOnly {
			failWireDisabled(w)
			return
		}
		var ok bool
		if query, n, stats, ok = s.decodeWireTopN(w, r); !ok {
			return
		}
	} else {
		var req dist.TopNRequest
		if !readJSON(w, r, s.maxBody, &req) {
			return
		}
		query, n, stats = req.Query, req.N, dist.StatsFromJSON(req.Stats)
	}
	// Empty queries and non-positive n are well-defined (an empty
	// ranking) and must behave exactly like a LocalNode would —
	// client-facing validation lives in the coordinator, and the
	// cluster's local/remote transparency depends on the node
	// protocol never rejecting what a LocalNode accepts.
	tr := s.queryTrace(w, r)
	var scoreStart time.Time
	if tr != nil {
		scoreStart = time.Now()
	}
	res, _ := s.node.TopNWithStats(r.Context(), query, n, stats)
	if tr != nil {
		tr.AddSpan("scoring", scoreStart)
	}
	// …encode by Accept.
	if !s.jsonOnly && wantsWire(r) {
		wb := persist.GetWireBuffer()
		wb.EncodeTopNResponse(res)
		writeWire(w, wb)
		persist.PutWireBuffer(wb)
	} else {
		writeJSON(w, http.StatusOK, dist.TopNResponse{Results: dist.ResultsToJSON(res)})
	}
	if tr != nil {
		s.slow.Record(tr, obs.SlowQueryRecord{
			Role: "node", Query: query, Results: len(res),
		})
	}
}

func (s *NodeServer) search(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var (
		query string
		plan  ir.EvalPlan
		stats ir.Stats
	)
	if isWireRequest(r) {
		if s.jsonOnly {
			failWireDisabled(w)
			return
		}
		var ok bool
		if query, plan, stats, ok = s.decodeWireSearch(w, r); !ok {
			return
		}
	} else {
		var req dist.SearchPlanRequest
		if !readJSON(w, r, s.maxBody, &req) {
			return
		}
		query, plan, stats = req.Query, dist.PlanFromJSON(req.Plan), dist.StatsFromJSON(req.Stats)
	}
	// Degenerate plans mirror LocalNode (empty ranking, exact quality)
	// for the same transparency reason as /node/topn.
	tr := s.queryTrace(w, r)
	var scoreStart time.Time
	if tr != nil {
		scoreStart = time.Now()
	}
	res, est, _ := s.node.SearchPlan(r.Context(), query, plan, stats)
	if tr != nil {
		tr.AddSpan("scoring", scoreStart)
	}
	if !s.jsonOnly && wantsWire(r) {
		wb := persist.GetWireBuffer()
		wb.EncodeSearchResponse(res, est)
		writeWire(w, wb)
		persist.PutWireBuffer(wb)
	} else {
		writeJSON(w, http.StatusOK, dist.SearchPlanResponse{
			Results: dist.ResultsToJSON(res),
			Quality: dist.QualityToJSON(est),
		})
	}
	if tr != nil {
		s.slow.Record(tr, obs.SlowQueryRecord{
			Role: "node", Query: query, Quality: est.Value(), Results: len(res),
		})
	}
}

func (s *NodeServer) load(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	var l dist.NodeLoad
	if r.URL.Query().Get("fresh") != "" {
		// The anti-entropy probe: guarantee a fresh content digest even
		// if that means freezing and hashing the fragment.
		l, _ = s.node.LoadChecksum(r.Context())
	} else {
		l, _ = s.node.Load(r.Context())
	}
	writeJSON(w, http.StatusOK, dist.LoadResponse{
		Docs:         l.Docs,
		MaxDoc:       uint64(l.MaxDoc),
		SnapshotUnix: l.SnapshotUnix,
		Checksum:     l.Checksum,
		LogPos:       l.LogPos,
	})
}

// oplogHandler serves the delta-resync protocol. GET ?from=P streams
// the node's op-log suffix from position P in the persist delta wire
// format; a position the log no longer covers (compacted, or no log)
// answers 416 so the caller falls back to a full snapshot. POST
// appends-and-applies a delta at exactly the node's position; a
// mismatched position answers 409 — the histories cannot be aligned
// by this delta.
func (s *NodeServer) oplogHandler(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		from, err := strconv.ParseUint(r.URL.Query().Get("from"), 10, 64)
		if err != nil {
			fail(w, http.StatusBadRequest, "missing or malformed from position")
			return
		}
		ops, err := s.node.OpsSince(r.Context(), from)
		if err != nil {
			if errors.Is(err, dist.ErrDeltaUnavailable) {
				fail(w, http.StatusRequestedRangeNotSatisfiable, err.Error())
				return
			}
			fail(w, http.StatusInternalServerError, "oplog read failed: "+err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := persist.EncodeOps(w, from, ops); err != nil {
			// Headers are gone; aborting mid-body is the only honest
			// signal left (see the snapshot GET handler).
			panic(http.ErrAbortHandler)
		}
	case http.MethodPost:
		from, ops, err := persist.DecodeOps(http.MaxBytesReader(w, r.Body, s.maxRestore))
		if err != nil {
			fail(w, http.StatusBadRequest, "unusable delta body: "+err.Error())
			return
		}
		if err := s.node.ApplyOps(r.Context(), from, ops); err != nil {
			if errors.Is(err, dist.ErrPosMismatch) {
				fail(w, http.StatusConflict, err.Error())
				return
			}
			fail(w, http.StatusInternalServerError, "delta apply failed: "+err.Error())
			return
		}
		writeJSON(w, http.StatusOK, struct{}{})
	default:
		w.Header().Set("Allow", "GET, POST")
		fail(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

func (s *NodeServer) snapshot(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		// Stream the LIVE fragment state in the persist binary format —
		// the resync transfer. No data dir is needed: the state is
		// exported under the node's write lock (a consistent cut), and
		// the format's own checksum fails a truncated transfer closed on
		// the receiving side.
		st := s.node.ExportState()
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := persist.Save(w, st); err != nil {
			// Headers are gone; aborting the connection mid-body is the
			// only honest signal left (a clean close would present the
			// truncated stream as a complete 200 — persist.Load would
			// still reject it, but a non-persist reader would not).
			panic(http.ErrAbortHandler)
		}
	case http.MethodPost:
		if s.dataDir == "" {
			fail(w, http.StatusPreconditionFailed, errNoDataDir.Error())
			return
		}
		resp, err := s.Snapshot()
		if err != nil {
			fail(w, http.StatusInternalServerError, "snapshot failed: "+err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
	default:
		w.Header().Set("Allow", "GET, POST")
		fail(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

// restore replaces the served fragment with the snapshot in the
// request body (persist binary format): the state installs under the
// node's write lock with the freeze epoch advanced past the
// pre-restore epoch, so no query cache can serve pre-restore rankings.
// A corrupt body fails closed — the node keeps serving its previous
// fragment. With a data dir configured the restored state is also
// persisted immediately, so a crash right after a resync cannot
// resurrect the pre-resync fragment on the next boot.
func (s *NodeServer) restore(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	st, err := persist.Load(http.MaxBytesReader(w, r.Body, s.maxRestore))
	if err != nil {
		// Corruption, truncation and an over-cap body all surface here;
		// the error text names the cause. Fails closed either way.
		fail(w, http.StatusBadRequest, "unusable snapshot body: "+err.Error())
		return
	}
	if err := s.node.RestoreState(r.Context(), st); err != nil {
		fail(w, http.StatusBadRequest, "restore rejected: "+err.Error())
		return
	}
	resp := dist.RestoreResponse{
		Docs:     len(st.Docs),
		Terms:    len(st.Terms),
		Checksum: st.Checksum(),
	}
	if s.dataDir != "" {
		if snap, err := s.Snapshot(); err == nil {
			resp.SnapshotUnix = snap.Unix
		} else {
			// The in-memory restore stands, but the durability promise
			// (crash cannot resurrect the pre-resync fragment) does not
			// — say so instead of silently omitting the snapshot time.
			resp.SnapshotError = err.Error()
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *NodeServer) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
