package server

import (
	"net/http"

	"dlsearch/internal/bat"
	"dlsearch/internal/core"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
)

// NodeConfig tunes a node server. The zero value selects the package
// defaults and no query cache.
type NodeConfig struct {
	MaxBody       int64 // request-body cap, bytes
	MaxConcurrent int   // in-flight request bound
	// Cache caches (query → term oids) resolutions AND whole RES sets
	// (query → ranking, top-N-aware) for this node's query endpoints.
	Cache *core.QueryCache
	// MemoryBudget, when positive, bounds the resident bytes of the
	// index's plain posting columns; cold low-idf lists are held
	// compressed (ir.SetMemoryBudget).
	MemoryBudget int
}

// nodeHandler serves one shared-nothing index fragment over the node
// wire protocol. All index access goes through a dist.LocalNode,
// which arbitrates the one-writer rule (adds and freezes exclusive,
// queries shared) and runs the cached-resolution top-N path — the
// handler itself only speaks JSON and validates.
type nodeHandler struct {
	node    *dist.LocalNode
	maxBody int64
}

// NewNodeHandler returns the HTTP handler serving ix as a remote
// cluster node: POST /node/add, GET /node/stats, POST /node/topn,
// GET /node/load, GET /healthz. A nil cfg selects defaults.
func NewNodeHandler(ix *ir.Index, cfg *NodeConfig) http.Handler {
	h := &nodeHandler{node: dist.NewLocalNode(ix), maxBody: DefaultMaxBody}
	maxConc := DefaultMaxConcurrent
	if cfg != nil {
		if cfg.MaxBody > 0 {
			h.maxBody = cfg.MaxBody
		}
		if cfg.MaxConcurrent > 0 {
			maxConc = cfg.MaxConcurrent
		}
		if cfg.Cache != nil {
			h.node.SetResolver(cfg.Cache.Resolve)
			h.node.SetRankingCache(cfg.Cache)
		}
		if cfg.MemoryBudget > 0 {
			ix.SetMemoryBudget(cfg.MemoryBudget)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc(dist.PathNodeAdd, h.add)
	mux.HandleFunc(dist.PathNodeAddBatch, h.addBatch)
	mux.HandleFunc(dist.PathNodeStats, h.stats)
	mux.HandleFunc(dist.PathNodeTopN, h.topn)
	mux.HandleFunc(dist.PathNodeSearch, h.search)
	mux.HandleFunc(dist.PathNodeLoad, h.load)
	// The health probe bypasses the semaphore: a saturated node is
	// busy, not dead, and must not be ejected by its load balancer.
	outer := http.NewServeMux()
	outer.HandleFunc(dist.PathHealthz, h.healthz)
	outer.Handle("/", limitConcurrency(maxConc, mux))
	return outer
}

func (h *nodeHandler) add(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req dist.AddRequest
	if !readJSON(w, r, h.maxBody, &req) {
		return
	}
	if req.Doc == 0 {
		fail(w, http.StatusBadRequest, "missing document oid")
		return
	}
	h.node.Add(r.Context(), bat.OID(req.Doc), req.URL, req.Text)
	writeJSON(w, http.StatusOK, struct{}{})
}

func (h *nodeHandler) addBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req dist.AddBatchRequest
	if !readJSON(w, r, h.maxBody, &req) {
		return
	}
	if len(req.Docs) == 0 {
		fail(w, http.StatusBadRequest, "empty batch")
		return
	}
	docs := make([]dist.Doc, len(req.Docs))
	for i, d := range req.Docs {
		if d.Doc == 0 {
			fail(w, http.StatusBadRequest, "missing document oid in batch")
			return
		}
		docs[i] = dist.Doc{OID: bat.OID(d.Doc), URL: d.URL, Text: d.Text}
	}
	if err := h.node.AddBatch(r.Context(), docs); err != nil {
		fail(w, http.StatusBadGateway, "batch add failed: "+err.Error())
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (h *nodeHandler) stats(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	st, _ := h.node.Stats(r.Context())
	writeJSON(w, http.StatusOK, dist.StatsToJSON(st))
}

func (h *nodeHandler) topn(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req dist.TopNRequest
	if !readJSON(w, r, h.maxBody, &req) {
		return
	}
	// Empty queries and non-positive n are well-defined (an empty
	// ranking) and must behave exactly like a LocalNode would —
	// client-facing validation lives in the coordinator, and the
	// cluster's local/remote transparency depends on the node
	// protocol never rejecting what a LocalNode accepts.
	res, _ := h.node.TopNWithStats(r.Context(), req.Query, req.N, dist.StatsFromJSON(req.Stats))
	writeJSON(w, http.StatusOK, dist.TopNResponse{Results: dist.ResultsToJSON(res)})
}

func (h *nodeHandler) search(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req dist.SearchPlanRequest
	if !readJSON(w, r, h.maxBody, &req) {
		return
	}
	// Degenerate plans mirror LocalNode (empty ranking, exact quality)
	// for the same transparency reason as /node/topn.
	res, est, _ := h.node.SearchPlan(r.Context(), req.Query, dist.PlanFromJSON(req.Plan),
		dist.StatsFromJSON(req.Stats))
	writeJSON(w, http.StatusOK, dist.SearchPlanResponse{
		Results: dist.ResultsToJSON(res),
		Quality: dist.QualityToJSON(est),
	})
}

func (h *nodeHandler) load(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	l, _ := h.node.Load(r.Context())
	writeJSON(w, http.StatusOK, dist.LoadResponse{Docs: l.Docs, MaxDoc: uint64(l.MaxDoc)})
}

func (h *nodeHandler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
