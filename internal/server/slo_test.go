package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
	"dlsearch/internal/slo"
)

// adaptiveFixture builds a 2-partition cluster whose corpus mixes
// frequent (low-idf, trailing-fragment) and rare terms, so a reduced
// fragment budget measurably drops quality below 1.
func adaptiveFixture(t *testing.T, cfg *CoordinatorConfig) (*Coordinator, http.Handler) {
	t.Helper()
	cluster := dist.NewCluster(2, nil)
	for i := 0; i < 60; i++ {
		text := "match play game set court ball"
		if i%10 == 0 {
			text = "seles melbourne trophy"
		}
		cluster.Add(bat.OID(i+1), "u", text)
	}
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, cfg)
	return co, co.Handler()
}

const adaptiveQuery = `{"query":"seles match ball","n":10}`

// queuedSearch issues the request on a goroutine (an adaptive search
// against a saturated semaphore decides its budget, then blocks in
// Acquire), waits until it is queued, and returns a collector.
func queuedSearch(t *testing.T, co *Coordinator, h http.Handler, path, body string) func() *httptest.ResponseRecorder {
	t.Helper()
	before := co.sem.Waiting()
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- postJSON(t, h, path, body) }()
	deadline := time.Now().Add(5 * time.Second)
	for co.sem.Waiting() <= before {
		if time.Now().After(deadline) {
			t.Fatal("adaptive search never queued on the semaphore")
		}
		time.Sleep(time.Millisecond)
	}
	return func() *httptest.ResponseRecorder {
		select {
		case w := <-done:
			return w
		case <-time.After(5 * time.Second):
			t.Fatal("queued search never completed")
			return nil
		}
	}
}

// TestAdaptiveSearchDegradesAndRecovers is the in-process half of the
// acceptance criterion: under semaphore pressure an adaptive
// coordinator serves a degraded-but-200 ranking instead of a 503, the
// decision is visible in /metrics and /stats, and once the pressure
// drains /search returns the byte-identical full-quality response.
func TestAdaptiveSearchDegradesAndRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	ctl := slo.New(slo.Config{Target: time.Second, MaxBudget: 8})
	co, h := adaptiveFixture(t, &CoordinatorConfig{
		Frags:         8,
		MaxConcurrent: 2,
		Metrics:       reg,
		SLO:           ctl,
	})

	// Unloaded: the empty curve decides the full budget — quality 1.
	w := postJSON(t, h, "/search", adaptiveQuery)
	if w.Code != http.StatusOK {
		t.Fatalf("unloaded /search = %d: %s", w.Code, w.Body)
	}
	baseline := append([]byte(nil), w.Body.Bytes()...)
	var base SearchResponse
	if err := json.Unmarshal(baseline, &base); err != nil {
		t.Fatal(err)
	}
	if base.Quality.Value != 1.0 || !base.Complete {
		t.Fatalf("unloaded response = %+v, want full quality", base)
	}

	// Saturate the semaphore: both slots held, so the next adaptive
	// search decides at occupancy (2+0+1)/2 = 1.5 → shed level 1 →
	// budget 4-of-8 — SERVED degraded once a slot frees, not shed.
	if !co.sem.TryAcquire() || !co.sem.TryAcquire() {
		t.Fatal("could not saturate the semaphore")
	}
	collect := queuedSearch(t, co, h, "/search", adaptiveQuery)
	co.sem.Release() // one held query finishes; the queued search runs
	w = collect()
	co.sem.Release()
	if w.Code != http.StatusOK {
		t.Fatalf("saturated /search = %d, want degraded 200: %s", w.Code, w.Body)
	}
	var degraded SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &degraded); err != nil {
		t.Fatal(err)
	}
	if v := degraded.Quality.Value; v <= 0 || v >= 1 {
		t.Fatalf("saturated quality = %v, want degraded in (0, 1)", v)
	}
	if degraded.Quality.FragsUsed != 4 {
		t.Fatalf("saturated search used %d fragments, want 4 (shed level 1)", degraded.Quality.FragsUsed)
	}
	if len(degraded.Results) == 0 || !degraded.Complete {
		t.Fatalf("degraded response = %+v", degraded)
	}

	// The decision trail: controller counters, /stats slo block,
	// dl_slo_* metrics.
	if c := ctl.Counters("a"); c.Decisions < 2 || c.Degraded == 0 || c.Rejected != 0 {
		t.Fatalf("controller counters = %+v", c)
	}
	var stats StatsResponse
	if err := json.Unmarshal(get(t, h, "/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	sloStats := stats.Indexes["a"].SLO
	if sloStats == nil || sloStats.Decisions < 2 || sloStats.Degraded == 0 {
		t.Fatalf("/stats slo block = %+v", sloStats)
	}
	if len(sloStats.Curve) == 0 {
		t.Fatalf("/stats slo curve empty after %d decisions", sloStats.Decisions)
	}
	metrics := get(t, h, "/metrics").Body.String()
	for _, want := range []string{
		`dl_slo_decisions_total{index="a"}`,
		`dl_slo_degraded_total{index="a"}`,
		`dl_slo_shed_level{index="a"}`,
		"dl_slo_budget_bucket",
	} {
		if !bytes.Contains([]byte(metrics), []byte(want)) {
			t.Fatalf("/metrics missing %s", want)
		}
	}

	// Drained: byte-identical to the unloaded full-quality response.
	w = postJSON(t, h, "/search", adaptiveQuery)
	if w.Code != http.StatusOK {
		t.Fatalf("drained /search = %d: %s", w.Code, w.Body)
	}
	if !bytes.Equal(w.Body.Bytes(), baseline) {
		t.Fatalf("drained response differs from baseline:\n%s\nvs\n%s", w.Body, baseline)
	}
}

// TestAdaptiveExplicitBudgetKeepsManualContract: a request that pins
// its own budget bypasses the controller — and keeps the classic
// immediate-503 behaviour when the coordinator is saturated.
func TestAdaptiveExplicitBudgetKeepsManualContract(t *testing.T) {
	ctl := slo.New(slo.Config{Target: time.Second, MaxBudget: 8})
	co, h := adaptiveFixture(t, &CoordinatorConfig{
		Frags:         8,
		MaxConcurrent: 1,
		SLO:           ctl,
	})
	// Unsaturated: the manual budget is honoured verbatim.
	w := postJSON(t, h, "/search", `{"query":"seles match ball","n":10,"budget":1}`)
	if w.Code != http.StatusOK {
		t.Fatalf("manual /search = %d: %s", w.Code, w.Body)
	}
	var manual SearchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &manual); err != nil {
		t.Fatal(err)
	}
	if manual.Quality.FragsUsed != 1 {
		t.Fatalf("manual budget not honoured: %+v", manual.Quality)
	}
	if c := ctl.Counters("a"); c.Decisions != 0 {
		t.Fatalf("manual request consulted the controller: %+v", c)
	}
	// Saturated: manual requests shed immediately, adaptive ones queue
	// and are served degraded.
	if !co.sem.TryAcquire() {
		t.Fatal("could not saturate")
	}
	if w := postJSON(t, h, "/search?frag=1", adaptiveQuery); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated manual /search = %d, want 503", w.Code)
	}
	collect := queuedSearch(t, co, h, "/search", adaptiveQuery)
	co.sem.Release()
	if w := collect(); w.Code != http.StatusOK {
		t.Fatalf("saturated adaptive /search = %d, want 200: %s", w.Code, w.Body)
	}
}

// TestAdaptiveQualityFloorRejects: when the curve proves every budget
// the pressure asks for is below the quality floor and occupancy is
// past the rejection threshold, the coordinator finally answers 503 —
// quality sheds first, queries only past the floor.
func TestAdaptiveQualityFloorRejects(t *testing.T) {
	ctl := slo.New(slo.Config{Target: time.Second, MaxBudget: 8, MinQuality: 0.9})
	co, h := adaptiveFixture(t, &CoordinatorConfig{
		Frags:         8,
		MaxConcurrent: 1,
		MinQuality:    0.9,
		SLO:           ctl,
	})
	// Teach the curve that budgets 1..7 are fast but far below the
	// floor: pressure has nowhere to shed to.
	curve := ctl.Curve("a")
	for b := 1; b <= 7; b++ {
		for i := 0; i < 20; i++ {
			curve.ObserveCost(b, 0.001, 0.2)
		}
	}
	// One slot held and one search queued: the next decision sees
	// occupancy (1+1+1)/1 = 3 — the rejection threshold.
	if !co.sem.TryAcquire() {
		t.Fatal("could not saturate")
	}
	collect := queuedSearch(t, co, h, "/search", adaptiveQuery)
	w := postJSON(t, h, "/search", adaptiveQuery)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("floor-clamped overload /search = %d, want 503: %s", w.Code, w.Body)
	}
	if c := ctl.Counters("a"); c.Rejected == 0 || c.FloorHits == 0 {
		t.Fatalf("controller counters after reject = %+v", c)
	}
	co.sem.Release()
	if w := collect(); w.Code != http.StatusOK {
		t.Fatalf("queued search finished with %d, want 200: %s", w.Code, w.Body)
	}
}

// TestAdaptiveSLOMsOverride: a per-request slo_ms replaces the
// configured target for that decision, is counted as an override, and
// is validated.
func TestAdaptiveSLOMsOverride(t *testing.T) {
	ctl := slo.New(slo.Config{Target: time.Second, MaxBudget: 8})
	_, h := adaptiveFixture(t, &CoordinatorConfig{
		Frags: 8,
		SLO:   ctl,
	})
	// Teach the curve latency(b) = b x 10ms.
	curve := ctl.Curve("a")
	for b := 1; b <= 8; b++ {
		for i := 0; i < 20; i++ {
			curve.ObserveCost(b, float64(b)*0.010, float64(b)/8)
		}
	}
	// Default 1s target: everything fits, full budget.
	var full SearchResponse
	if err := json.Unmarshal(postJSON(t, h, "/search", adaptiveQuery).Body.Bytes(), &full); err != nil {
		t.Fatal(err)
	}
	if full.Quality.Value != 1.0 {
		t.Fatalf("default-target quality = %+v, want 1", full.Quality)
	}
	// A 25ms override only fits ~2 fragments: the served quality drops.
	var tight SearchResponse
	w := postJSON(t, h, "/search?slo_ms=25", adaptiveQuery)
	if w.Code != http.StatusOK {
		t.Fatalf("?slo_ms=25 = %d: %s", w.Code, w.Body)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &tight); err != nil {
		t.Fatal(err)
	}
	if v := tight.Quality.Value; v <= 0 || v >= 1 {
		t.Fatalf("tight-SLO quality = %v, want in (0, 1)", v)
	}
	if tight.Quality.FragsUsed >= full.Quality.FragsUsed {
		t.Fatalf("tight SLO used %d fragments, full target used %d",
			tight.Quality.FragsUsed, full.Quality.FragsUsed)
	}
	// The body spelling works too and both count as overrides.
	if w := postJSON(t, h, "/search", `{"query":"seles match ball","n":10,"slo_ms":25}`); w.Code != http.StatusOK {
		t.Fatalf("body slo_ms = %d: %s", w.Code, w.Body)
	}
	if c := ctl.Counters("a"); c.Overrides != 2 {
		t.Fatalf("overrides = %d, want 2", c.Overrides)
	}
	// Malformed overrides are 400, not decisions.
	for _, path := range []string{"/search?slo_ms=x", "/search?slo_ms=-1"} {
		if w := postJSON(t, h, path, adaptiveQuery); w.Code != http.StatusBadRequest {
			t.Fatalf("%s = %d, want 400", path, w.Code)
		}
	}
	if w := postJSON(t, h, "/search", `{"query":"q","n":5,"slo_ms":-3}`); w.Code != http.StatusBadRequest {
		t.Fatalf("negative body slo_ms = %d, want 400", w.Code)
	}
}

// TestAdaptiveSearchTraceRecordsDecision: the slow-query log line of
// an adaptively served query carries the controller's decision and an
// "admit" span.
func TestAdaptiveSearchTraceRecordsDecision(t *testing.T) {
	var buf bytes.Buffer
	ctl := slo.New(slo.Config{Target: time.Second, MaxBudget: 8})
	co, h := adaptiveFixture(t, &CoordinatorConfig{
		Frags:         8,
		MaxConcurrent: 2,
		SLO:           ctl,
		SlowQuery:     obs.NewSlowQueryLog(&buf, time.Nanosecond),
	})
	// Saturate so the recorded decision is a degraded one.
	if !co.sem.TryAcquire() || !co.sem.TryAcquire() {
		t.Fatal("could not saturate")
	}
	collect := queuedSearch(t, co, h, "/search", adaptiveQuery)
	co.sem.Release()
	if w := collect(); w.Code != http.StatusOK {
		t.Fatalf("/search = %d", w.Code)
	}
	co.sem.Release()
	var rec obs.SlowQueryRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("slow-query line %q: %v", buf.String(), err)
	}
	if rec.SLO == nil {
		t.Fatalf("slow-query record has no slo block: %+v", rec)
	}
	if rec.SLO.Budget != 4 || !rec.SLO.Degraded || rec.SLO.ShedLevel != 1 {
		t.Fatalf("recorded decision = %+v, want degraded budget 4 at shed level 1", rec.SLO)
	}
	if rec.SLO.AchievedMS <= 0 {
		t.Fatalf("achieved latency not recorded: %+v", rec.SLO)
	}
	found := false
	for _, sp := range rec.Spans {
		if sp.Name == "admit" {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace spans %v missing admit", rec.Spans)
	}
}

// TestNodeTelemetryBypassesSemaphore: a saturated node is busy, not
// dead — /healthz and /metrics must answer while every request slot is
// held, or the load balancer ejects exactly the node whose telemetry
// matters most.
func TestNodeTelemetryBypassesSemaphore(t *testing.T) {
	ix := ir.NewIndex()
	ix.Add(1, "u", "alpha beta")
	s := NewNodeServer(ix, &NodeConfig{
		MaxConcurrent: 1,
		Metrics:       obs.NewRegistry(),
	})
	h := s.Handler()
	if !s.sem.TryAcquire() {
		t.Fatal("could not saturate the node semaphore")
	}
	defer s.sem.Release()
	if w := get(t, h, "/healthz"); w.Code != http.StatusOK {
		t.Fatalf("saturated /healthz = %d, want 200", w.Code)
	}
	w := get(t, h, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("saturated /metrics = %d, want 200", w.Code)
	}
	if !bytes.Contains(w.Body.Bytes(), []byte("dl_node_scoring_seconds")) {
		t.Fatal("saturated /metrics serves no node metrics")
	}
	// The request plane meanwhile sheds as configured.
	if w := postJSON(t, h, "/node/topn", `{"query":"alpha","n":5}`); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated /node/topn = %d, want 503", w.Code)
	}
	// After a budgeted evaluation the per-fragment postings counters
	// register lazily and report where the budget cut landed.
	s.sem.Release()
	if w := postJSON(t, h, "/node/search", `{"query":"alpha","plan":{"n":5,"frags":2,"budget":1}}`); w.Code != http.StatusOK {
		t.Fatalf("/node/search = %d: %s", w.Code, w.Body)
	}
	if !s.sem.TryAcquire() {
		t.Fatal("could not re-saturate")
	}
	if w := get(t, h, "/metrics"); !bytes.Contains(w.Body.Bytes(), []byte(`dl_node_frag_postings_total{frag="0"}`)) {
		t.Fatal("/metrics missing per-fragment postings counters after budgeted search")
	}
}
