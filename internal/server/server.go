// Package server is the networked serving layer: HTTP/JSON handlers
// exposing the search engine over the wire. Two roles mirror the
// paper's central-DBMS architecture:
//
//   - the node server (NewNodeHandler) serves one shared-nothing
//     fragment — the dist.Node operations — so an index can live in
//     its own process or machine behind dist.RemoteNode;
//   - the coordinator (NewCoordinator) is the central site: it fans
//     /search out over a dist.Cluster of local and/or remote nodes,
//     merges the per-node RES sets, and exposes /add, /stats and
//     /healthz for operation.
//
// Both roles validate requests (malformed JSON, oversized bodies, bad
// parameters are 4xx, never panics), bound their concurrency with a
// semaphore (503 when saturated) and shut down gracefully via Run.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Defaults for the serving knobs; constructors apply them when the
// corresponding config field is zero.
const (
	DefaultMaxBody       = 1 << 20 // 1 MiB request-body cap
	DefaultMaxConcurrent = 64      // in-flight requests per handler
	DefaultMaxTopN       = 1000    // /search n is clamped to this
	// DefaultMaxRestoreBody caps POST /node/restore bodies separately
	// from DefaultMaxBody: a restore ships a whole fragment snapshot,
	// which legitimately dwarfs any JSON request.
	DefaultMaxRestoreBody = 1 << 30 // 1 GiB
)

// errorResponse is the uniform error body of both servers.
type errorResponse struct {
	Error string `json:"error"`
}

// jsonBufPool pools JSON response encode buffers: encoding lands in a
// reused buffer and the response writes out in one call, so steady
// traffic stops allocating a fresh growth chain per response.
var jsonBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxPooledJSON caps the buffer capacity worth pooling; a one-off
// giant response must not pin its footprint.
const maxPooledJSON = 1 << 20

// writeJSON encodes v as the response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := jsonBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		// Encoding our own response types cannot fail; guard anyway.
		buf.Reset()
		jsonBufPool.Put(buf)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledJSON {
		jsonBufPool.Put(buf)
	}
}

// fail writes a JSON error response.
func fail(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// readJSON decodes the request body into v under the byte cap,
// answering 400 (malformed / trailing data) or 413 (oversized) itself.
// It reports whether decoding succeeded.
func readJSON(w http.ResponseWriter, r *http.Request, maxBody int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			fail(w, http.StatusRequestEntityTooLarge, "request body too large")
		} else {
			fail(w, http.StatusBadRequest, "malformed JSON: "+err.Error())
		}
		return false
	}
	if dec.More() {
		fail(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// requireMethod answers 405 unless the request uses the method.
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		fail(w, http.StatusMethodNotAllowed, "method not allowed")
		return false
	}
	return true
}

// semaphore bounds a handler to a fixed number of in-flight requests
// and keeps its own pressure observable: current occupancy, the
// configured limit, and how many requests were shed with a 503. Under
// overload the server sheds load instead of queueing unboundedly.
type semaphore struct {
	ch      chan struct{}
	limit   int
	shed    atomic.Uint64
	waiting atomic.Int64
}

func newSemaphore(max int) *semaphore {
	return &semaphore{ch: make(chan struct{}, max), limit: max}
}

// wrap bounds h to the semaphore's limit; a request arriving while it
// is full is answered 503 immediately and counted in Shed.
func (s *semaphore) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.ch <- struct{}{}:
			defer func() { <-s.ch }()
			h.ServeHTTP(w, r)
		default:
			s.shed.Add(1)
			fail(w, http.StatusServiceUnavailable, "server at capacity")
		}
	})
}

// TryAcquire claims a slot without blocking; Release returns it. The
// persistent-connection transport uses the pair so framed RPCs draw
// from the same in-flight budget as HTTP requests.
func (s *semaphore) TryAcquire() bool {
	select {
	case s.ch <- struct{}{}:
		return true
	default:
		s.shed.Add(1)
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (s *semaphore) Release() { <-s.ch }

// Acquire claims a slot, blocking until one frees or ctx is done; it
// reports whether the slot was claimed. Unlike TryAcquire a failed
// (cancelled) wait is not counted as shed — the adaptive admission
// path sheds quality, not queries, and accounts its own rejections.
// Waiters are visible through Waiting so the admission controller can
// read queue pressure.
func (s *semaphore) Acquire(ctx context.Context) bool {
	select {
	case s.ch <- struct{}{}: // fast path: free slot, no bookkeeping
		return true
	default:
	}
	s.waiting.Add(1)
	defer s.waiting.Add(-1)
	select {
	case s.ch <- struct{}{}:
		return true
	case <-ctx.Done():
		return false
	}
}

// Waiting reports the requests currently blocked in Acquire.
func (s *semaphore) Waiting() int { return int(s.waiting.Load()) }

// InFlight reports the requests currently holding a slot.
func (s *semaphore) InFlight() int { return len(s.ch) }

// Limit reports the configured in-flight bound.
func (s *semaphore) Limit() int { return s.limit }

// Shed reports the cumulative 503-shed request count.
func (s *semaphore) Shed() uint64 { return s.shed.Load() }

// Run serves h on addr until ctx is cancelled, then drains in-flight
// requests through a graceful shutdown (bounded by grace; 0 selects
// 5s). It returns nil after a clean shutdown.
func Run(ctx context.Context, addr string, h http.Handler, grace time.Duration) error {
	if grace <= 0 {
		grace = 5 * time.Second
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		return srv.Shutdown(sctx)
	case err := <-errc:
		return err
	}
}
