package server

import (
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"dlsearch/internal/bat"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/persist"
)

// TestCoordinatorOpLogStats: /stats surfaces the op-log machinery —
// per-replica log positions, a lagging replica's log_lag against the
// group maximum, and the delta/full resync split with shipped bytes —
// everything the CI delta-resync job asserts on.
func TestCoordinatorOpLogStats(t *testing.T) {
	mkNode := func() *dist.LocalNode {
		l, err := persist.OpenOpLog(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		n := dist.NewLocalNode(ir.NewIndex())
		n.SetOpLog(l)
		return n
	}
	a, b := mkNode(), mkNode()
	cluster := dist.NewReplicatedClusterOf([][]dist.Node{{a, b}}, nil)
	co := NewCoordinator(map[string]*dist.Cluster{"a": cluster}, nil)
	h := co.Handler()
	for i := 0; i < 20; i++ {
		if err := cluster.AddContext(context.Background(), bat.OID(i+1), "u", fmt.Sprintf("melbourne champion doc%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// B misses a tail of writes.
	for i := 20; i < 25; i++ {
		if err := a.Add(context.Background(), bat.OID(i+1), "u", fmt.Sprintf("trophy winner doc%d", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	stats := func() IndexStats {
		cluster.InvalidateStats()
		var st StatsResponse
		if err := json.Unmarshal(get(t, h, "/stats").Body.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		return st.Indexes["a"]
	}
	ixst := stats()
	r0, r1 := ixst.Groups[0].Replicas[0], ixst.Groups[0].Replicas[1]
	if r0.LogPos != 25 || r1.LogPos != 20 {
		t.Fatalf("log positions = %d/%d, want 25/20", r0.LogPos, r1.LogPos)
	}
	if r0.LogLag != 0 || r1.LogLag != 5 {
		t.Fatalf("log lag = %d/%d, want 0/5", r0.LogLag, r1.LogLag)
	}
	if ixst.ResyncsDelta != 0 || ixst.ResyncsFull != 0 || ixst.ResyncBytes != 0 {
		t.Fatalf("resync counters moved before any resync: %+v", ixst)
	}
	// Heal: the lagging replica catches up by delta, and the counters
	// split accordingly.
	if rep := cluster.CheckReplicas(context.Background(), true); rep.Resynced != 1 {
		t.Fatalf("anti-entropy pass = %+v", rep)
	}
	ixst = stats()
	if ixst.ResyncsDelta != 1 || ixst.ResyncsFull != 0 || ixst.ResyncBytes == 0 {
		t.Fatalf("post-heal counters = delta %d full %d bytes %d, want 1/0/>0",
			ixst.ResyncsDelta, ixst.ResyncsFull, ixst.ResyncBytes)
	}
	r0, r1 = ixst.Groups[0].Replicas[0], ixst.Groups[0].Replicas[1]
	if r0.LogPos != 25 || r1.LogPos != 25 || r0.LogLag != 0 || r1.LogLag != 0 {
		t.Fatalf("post-heal positions = %+v %+v, want both at 25 with zero lag", r0, r1)
	}
}
