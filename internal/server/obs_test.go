package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
)

// syncBuffer is a goroutine-safe log sink for the slow-query logs.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestObservabilityEndToEnd drives a coordinator over two remote node
// servers with full instrumentation: the coordinator's request ID must
// be echoed in the /search response AND appear in the node-side
// slow-query log (propagated via X-DL-Request), /metrics must serve
// Prometheus text on both roles, and /stats must report latency
// quantiles and semaphore pressure.
func TestObservabilityEndToEnd(t *testing.T) {
	var nodeSlow syncBuffer
	nodeReg := obs.NewRegistry()
	var nodeServers []*httptest.Server
	var nodes []dist.Node
	for i := 0; i < 2; i++ {
		ix := ir.NewIndex()
		h := NewNodeHandler(ix, &NodeConfig{
			Metrics:   nodeReg,
			SlowQuery: obs.NewSlowQueryLog(&nodeSlow, time.Nanosecond),
		})
		ts := httptest.NewServer(h)
		defer ts.Close()
		nodeServers = append(nodeServers, ts)
		nodes = append(nodes, dist.NewRemoteNode(ts.URL, nil))
	}
	cluster := dist.NewClusterOf(nodes, nil)

	var coSlow syncBuffer
	coReg := obs.NewRegistry()
	co := NewCoordinator(map[string]*dist.Cluster{"lib": cluster}, &CoordinatorConfig{
		Metrics:   coReg,
		SlowQuery: obs.NewSlowQueryLog(&coSlow, time.Nanosecond),
	})
	cot := httptest.NewServer(co.Handler())
	defer cot.Close()

	post := func(path, body string) (*http.Response, []byte) {
		resp, err := http.Post(cot.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}
	get := func(url string) string {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, buf.String())
		}
		return buf.String()
	}

	if resp, body := post("/add", `{"text":"tennis champion trophy"}`); resp.StatusCode != 200 {
		t.Fatalf("/add: %d %s", resp.StatusCode, body)
	}
	if resp, body := post("/add", `{"text":"winning serve at the open"}`); resp.StatusCode != 200 {
		t.Fatalf("/add: %d %s", resp.StatusCode, body)
	}

	const searches = 5
	var reqID string
	for i := 0; i < searches; i++ {
		resp, body := post("/search", `{"query":"champion serve","n":5}`)
		if resp.StatusCode != 200 {
			t.Fatalf("/search: %d %s", resp.StatusCode, body)
		}
		reqID = resp.Header.Get(obs.HeaderRequestID)
		if reqID == "" {
			t.Fatal("no X-DL-Request header echoed on /search")
		}
	}

	// The coordinator's request ID must appear in BOTH slow-query logs
	// — that is the trace join the whole feature is for.
	for _, log := range []struct{ role, text string }{
		{"coordinator", coSlow.String()},
		{"node", nodeSlow.String()},
	} {
		if !strings.Contains(log.text, reqID) {
			t.Fatalf("%s slow-query log does not carry request ID %s:\n%s", log.role, reqID, log.text)
		}
		var rec obs.SlowQueryRecord
		line := log.text[:strings.IndexByte(log.text, '\n')]
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("%s slow-query line is not JSON: %v\n%s", log.role, err, line)
		}
		if rec.Role != log.role || len(rec.Spans) == 0 {
			t.Fatalf("%s slow-query record = %+v, want role %q with spans", log.role, rec, log.role)
		}
	}

	// Coordinator /metrics: Prometheus text with the search counter at
	// the served count and a non-empty latency histogram.
	met := get(cot.URL + "/metrics")
	for _, want := range []string{
		`dl_coordinator_requests_total{op="search"} 5`,
		`dl_search_latency_seconds_bucket{index="lib",le="+Inf"} 5`,
		`dl_search_quality_count{index="lib"} 5`,
		"go_goroutines",
	} {
		if !strings.Contains(met, want) {
			t.Fatalf("coordinator /metrics missing %q:\n%s", want, met)
		}
	}
	// Node /metrics: per-endpoint counters and scoring histogram fed.
	nmet := get(nodeServers[0].URL + "/metrics")
	for _, want := range []string{
		`dl_node_requests_total{path="/node/topn"}`,
		"dl_node_scoring_seconds_count",
		"dl_node_ingest_docs_total",
	} {
		if !strings.Contains(nmet, want) {
			t.Fatalf("node /metrics missing %q:\n%s", want, nmet)
		}
	}

	// /stats: latency/quality quantiles per index plus semaphore
	// pressure.
	var st StatsResponse
	if err := json.Unmarshal([]byte(get(cot.URL+"/stats")), &st); err != nil {
		t.Fatal(err)
	}
	lib := st.Indexes["lib"]
	if lib.LatencyMS == nil || lib.LatencyMS.Count != searches || lib.LatencyMS.P95 <= 0 {
		t.Fatalf("stats latency quantiles = %+v, want count %d with positive p95", lib.LatencyMS, searches)
	}
	if lib.Quality == nil || lib.Quality.Count != searches {
		t.Fatalf("stats quality quantiles = %+v, want count %d", lib.Quality, searches)
	}
	if st.Concurrency == nil || st.Concurrency.Limit != DefaultMaxConcurrent {
		t.Fatalf("stats concurrency = %+v, want limit %d", st.Concurrency, DefaultMaxConcurrent)
	}
	if len(lib.Groups) == 0 || lib.Groups[0].Replicas[0].RPCCalls == 0 {
		t.Fatalf("replica RPC telemetry missing: %+v", lib.Groups)
	}
}

// TestNodeQueryUntracedWhenUninstrumented: without a request ID and
// without a slow-query log, the node query path must not create a
// trace (no echoed header) — that is what keeps the benchmark path
// allocation-free.
func TestNodeQueryUntracedWhenUninstrumented(t *testing.T) {
	h := NewNodeHandler(ir.NewIndex(), nil)
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, dist.PathNodeTopN,
		strings.NewReader(`{"query":"q","n":3,"stats":{"df":{},"total_df":0,"docs":0}}`))
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("topn = %d: %s", w.Code, w.Body)
	}
	if got := w.Header().Get(obs.HeaderRequestID); got != "" {
		t.Fatalf("uninstrumented node invented a request ID %q", got)
	}
}
