package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"

	"dlsearch/internal/bat"
	"dlsearch/internal/dist"
	"dlsearch/internal/webspace"
)

// DefaultStreamFlush is the per-index batch size of POST /add/stream
// when the config does not override it.
const DefaultStreamFlush = 256

// StreamLine is one NDJSON line of POST /add/stream. Three kinds of
// line feed the two backend kinds:
//
//   - {"index":..., "doc":N, "url":..., "text":...} — a plain IR
//     document for the named cluster (doc 0 auto-assigns the next oid
//     of the index's sequence, like /add).
//   - {"webspace": {...}} — one conceptual webspace.Document, stored
//     in the coordinator's engine (requires an engine).
//   - {"index":..., "owner":"Class:id", "text":...} — content owned
//     by a conceptual object: the oid is resolved from the owner's
//     qualified id, so the cluster's document ids line up with the
//     engine's object element oids (requires an engine, and the
//     owner's webspace line must precede it in the stream).
//
// The request body is NOT subject to the coordinator's MaxBody cap —
// the whole point of streaming ingest. Memory is bounded per line
// (MaxBody each) and per index (StreamFlush buffered documents).
type StreamLine struct {
	Index    string             `json:"index,omitempty"`
	Doc      uint64             `json:"doc,omitempty"`
	URL      string             `json:"url,omitempty"`
	Owner    string             `json:"owner,omitempty"`
	Text     string             `json:"text,omitempty"`
	Webspace *webspace.Document `json:"webspace,omitempty"`
}

// StreamResultLine is one NDJSON line of the response: the outcome of
// one input line, correlated by its 1-based line number in the request
// body (blank separator lines count, but never produce a record). IR
// documents
// report their outcome when their batch flushes (so records are not
// necessarily in line order); conceptual documents report immediately
// with Committed 1. Error is set for a line that was not applied —
// the stream continues past semantic per-line errors and stops only
// on a malformed line (framing can no longer be trusted).
type StreamResultLine struct {
	Line      int    `json:"line"`
	Doc       uint64 `json:"doc,omitempty"`
	Replicas  int    `json:"replicas,omitempty"`
	Committed int    `json:"committed,omitempty"`
	Degraded  bool   `json:"degraded,omitempty"`
	Error     string `json:"error,omitempty"`
}

// StreamSummaryLine is the final NDJSON line of the response. Lines
// counts the non-blank input lines processed (blank separators are
// skipped, though they still advance the line numbering).
type StreamSummaryLine struct {
	Summary   bool `json:"summary"`
	Lines     int  `json:"lines"`
	Committed int  `json:"committed"`
	Degraded  int  `json:"degraded"`
	Failed    int  `json:"failed"`
	Errors    int  `json:"errors"`
}

// pendingStreamDoc is one queued IR document awaiting its batch flush.
type pendingStreamDoc struct {
	line int
	doc  dist.Doc
}

// addStream serves POST /add/stream: NDJSON ingest decoded one line
// at a time with per-index batching, reporting per-line outcomes as
// NDJSON back. See StreamLine for the accepted line kinds.
func (co *Coordinator) addStream(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	flushEvery := co.cfg.StreamFlush
	if flushEvery <= 0 {
		flushEvery = DefaultStreamFlush
	}
	// The response streams outcome records while the request body is
	// still being consumed; without full duplex the HTTP/1.x server
	// closes the body on the first response flush, killing the stream
	// mid-corpus ("invalid Read on closed Body").
	_ = http.NewResponseController(w).EnableFullDuplex()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(v any) {
		enc.Encode(v)
	}

	sc := bufio.NewScanner(r.Body)
	maxLine := int(co.cfg.MaxBody)
	if maxLine < 64*1024 {
		maxLine = 64 * 1024
	}
	sc.Buffer(make([]byte, 0, 64*1024), maxLine)

	var sum StreamSummaryLine
	engineTouched := false
	pending := map[string][]pendingStreamDoc{}
	pendingOIDs := map[string]map[bat.OID]bool{}

	// flushIndex commits one index's queued documents in one cluster
	// round-trip and emits their outcome records in line order.
	flushIndex := func(name string) {
		batch := pending[name]
		if len(batch) == 0 {
			return
		}
		delete(pending, name)
		delete(pendingOIDs, name)
		cluster := co.indexes[name]
		docs := make([]dist.Doc, len(batch))
		lineOf := make(map[bat.OID]int, len(batch))
		for i, p := range batch {
			docs[i] = p.doc
			lineOf[p.doc.OID] = p.line
		}
		var recs []StreamResultLine
		for _, p := range cluster.AddBatchResults(r.Context(), docs) {
			for _, oid := range p.Docs {
				rec := StreamResultLine{
					Line:      lineOf[oid],
					Doc:       uint64(oid),
					Replicas:  p.Replicas,
					Committed: p.Committed,
				}
				switch {
				case p.Err == nil:
					sum.Committed++
				case p.Failed():
					sum.Failed++
					rec.Error = "node unavailable: " + p.Err.Error()
				default:
					// Some replica state committed: searchable (or at
					// least partially applied) but degraded.
					sum.Degraded++
					rec.Degraded = true
					rec.Error = p.Err.Error()
				}
				recs = append(recs, rec)
			}
		}
		sort.Slice(recs, func(i, j int) bool { return recs[i].Line < recs[j].Line })
		for _, rec := range recs {
			emit(rec)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			// Blank separator lines keep their line number (so outcome
			// records match the client's file) but get no record.
			continue
		}
		sum.Lines++
		var sl StreamLine
		if err := json.Unmarshal(raw, &sl); err != nil {
			// Malformed framing: report and stop — everything after this
			// byte offset is untrustworthy.
			sum.Errors++
			emit(StreamResultLine{Line: line, Error: "malformed JSON: " + err.Error()})
			break
		}
		switch {
		case sl.Webspace != nil:
			if co.cfg.Engine == nil {
				sum.Errors++
				emit(StreamResultLine{Line: line, Error: "no conceptual engine configured"})
				continue
			}
			co.engineMu.Lock()
			err := co.cfg.Engine.AddDocument(sl.Webspace)
			co.engineMu.Unlock()
			if err != nil {
				sum.Errors++
				emit(StreamResultLine{Line: line, Error: err.Error()})
				continue
			}
			engineTouched = true
			sum.Committed++
			emit(StreamResultLine{Line: line, Committed: 1})
		case sl.Text == "":
			sum.Errors++
			emit(StreamResultLine{Line: line, Error: "missing text"})
		default:
			cluster, name, ok := co.streamIndex(sl.Index)
			if !ok {
				sum.Errors++
				if sl.Index == "" {
					emit(StreamResultLine{Line: line, Error: "missing index name"})
				} else {
					emit(StreamResultLine{Line: line, Error: "unknown index: " + sl.Index})
				}
				continue
			}
			var doc bat.OID
			switch {
			case sl.Owner != "":
				if co.cfg.Engine == nil {
					sum.Errors++
					emit(StreamResultLine{Line: line, Error: "no conceptual engine configured"})
					continue
				}
				// OIDOf may (re)build the derived access paths, so it
				// needs the write lock like any other engine mutation.
				co.engineMu.Lock()
				oid, ok := co.cfg.Engine.DB.OIDOf(sl.Owner)
				co.engineMu.Unlock()
				if !ok {
					sum.Errors++
					emit(StreamResultLine{Line: line, Error: "unknown owner: " + sl.Owner})
					continue
				}
				doc = oid
				if sl.URL == "" {
					sl.URL = sl.Owner
				}
				co.seqs[name].observe(doc)
			case sl.Doc != 0:
				doc = bat.OID(sl.Doc)
				co.seqs[name].observe(doc)
			default:
				var err error
				if doc, err = co.seqs[name].assign(r.Context(), cluster); err != nil {
					sum.Errors++
					emit(StreamResultLine{Line: line, Error: "cannot assign oid: " + err.Error()})
					continue
				}
			}
			if pendingOIDs[name][doc] {
				// The oid is already queued in this flush window (the
				// same owner twice, or a repeated explicit doc id).
				// Flush first: batched together the two lines would
				// collide in the flush's oid→line correlation, and the
				// earlier one would lose its outcome record. Flushing
				// keeps one record per line and gives the later line
				// the node's ordinary re-posted-oid semantics.
				flushIndex(name)
			}
			if pendingOIDs[name] == nil {
				pendingOIDs[name] = map[bat.OID]bool{}
			}
			pendingOIDs[name][doc] = true
			pending[name] = append(pending[name], pendingStreamDoc{
				line: line,
				doc:  dist.Doc{OID: doc, URL: sl.URL, Text: sl.Text},
			})
			if len(pending[name]) >= flushEvery {
				flushIndex(name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		sum.Errors++
		msg := "read: " + err.Error()
		if err == bufio.ErrTooLong {
			msg = "line " + strconv.Itoa(line+1) + " exceeds the per-line cap of " +
				strconv.Itoa(maxLine) + " bytes"
		}
		emit(StreamResultLine{Line: line + 1, Error: msg})
	}
	// Flush the remaining batches in a deterministic order.
	names := make([]string, 0, len(pending))
	for name := range pending {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		flushIndex(name)
	}
	if engineTouched {
		// Rebuild the derived access paths once, so concurrent /query
		// readers never trigger a lazy build.
		co.engineMu.Lock()
		co.cfg.Engine.DB.Warm()
		co.engineMu.Unlock()
	}
	co.streams.Add(1)
	if sum.Errors > 0 || sum.Failed > 0 {
		co.errs.Add(1)
	}
	co.adds.Add(uint64(sum.Committed))
	sum.Summary = true
	emit(sum)
	if flusher != nil {
		flusher.Flush()
	}
}

// streamIndex resolves a stream line's index name without writing an
// HTTP error (per-line outcomes carry the error instead): an empty
// name selects the sole index when exactly one is served.
func (co *Coordinator) streamIndex(name string) (*dist.Cluster, string, bool) {
	if name == "" {
		if len(co.indexes) == 1 {
			for n, c := range co.indexes {
				return c, n, true
			}
		}
		return nil, "", false
	}
	c, ok := co.indexes[name]
	return c, name, ok
}
