package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/core"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
	"dlsearch/internal/slo"
)

// CoordinatorConfig tunes a coordinator. The zero value selects the
// package defaults, no overall search deadline and no cache report.
type CoordinatorConfig struct {
	MaxBody       int64
	MaxConcurrent int
	MaxTopN       int // /search n clamp; 0 selects DefaultMaxTopN
	// SearchTimeout bounds each /search end to end. Together with the
	// clusters' per-node NodeTimeout this is the straggler policy: the
	// coordinator answers with the responsive nodes' merged ranking
	// and reports the dropped nodes. 0 means no deadline.
	SearchTimeout time.Duration
	// Cache is the engine's query-side term cache; when set its
	// hit/miss counters appear under query_cache in /stats. The local
	// nodes served by this process share it via their NodeConfig.
	Cache *core.QueryCache
	// Caches holds per-index query caches for a coordinator whose
	// local clusters each own one (multi-index mode): every entry's
	// counters appear under its index in /stats. Use Cache instead
	// when one cache is shared.
	Caches map[string]*core.QueryCache
	// Frags, FragBudget and MinQuality form the default evaluation
	// plan applied to /search requests that do not carry their own
	// plan fields: the fragmentation granularity each node uses for
	// its own partition, how many leading idf-descending fragments it
	// evaluates (0 = all: exact search), and the quality floor that
	// re-admits trailing fragments. Requests override per field.
	Frags      int
	FragBudget int
	MinQuality float64
	// Metrics, when set, receives the coordinator's serving telemetry —
	// request counters, per-index search latency and served-quality
	// histograms, the clusters' availability counters, Go runtime
	// gauges — and is served in Prometheus text format on GET /metrics
	// (outside the concurrency semaphore, like /healthz). nil disables
	// both the instrumentation and the endpoint.
	Metrics *obs.Registry
	// SlowQuery, when set, emits one JSON line (request ID, index,
	// query, span breakdown) for every /search slower than its
	// threshold. nil disables the slow-query log.
	SlowQuery *obs.SlowQueryLog
	// Engine, when set, serves the conceptual layer on POST /query:
	// the paper's query language parsed and executed against this
	// engine's webspace schema, monetxml store and meta-index, with
	// every contains predicate fanned out over the cluster whose index
	// name equals the predicate's "Class.attr" key. The coordinator
	// owns the engine's write lock; in-process writers must not mutate
	// it while the coordinator serves. nil disables /query (404) and
	// the conceptual line kinds of /add/stream.
	Engine *core.Engine
	// StreamFlush is the per-index batch size of POST /add/stream: how
	// many decoded documents accumulate before one AddBatchResults
	// round-trip. 0 selects DefaultStreamFlush. Memory is bounded by
	// StreamFlush × line size per index, never by the stream length.
	StreamFlush int
	// SLO, when set, turns /search adaptive: the budget controller
	// picks each query's fragment budget from the learned
	// quality/latency curve, and the concurrency semaphore becomes an
	// admission controller — overload degrades budget (shedding
	// quality) instead of answering 503, which is reserved for
	// decisions clamped at the quality floor under heavy occupancy.
	// Requests carrying an explicit budget (body `budget` or `?frag=`)
	// bypass the controller and keep the classic 503-when-saturated
	// contract. nil keeps /search fully manual.
	SLO *slo.Controller
}

// docSeq assigns document oids for /add requests without an explicit
// oid. The sequence seeds itself from the cluster's highest live oid
// on first use, so a freshly restarted coordinator in front of
// long-lived nodes continues after the documents already indexed
// instead of silently reusing a live oid (which would merge two
// documents). A failed add may leave an unused gap in the sequence —
// harmless, since seeding reads the true maximum, never a count.
type docSeq struct {
	mu     sync.Mutex
	next   bat.OID
	seeded bool
}

func (s *docSeq) assign(ctx context.Context, c *dist.Cluster) (bat.OID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.seeded {
		max, err := c.MaxDocContext(ctx)
		if err != nil {
			return bat.NilOID, err
		}
		// Never move backwards: observe() may have recorded a higher
		// explicit oid whose add is still in flight on a node.
		if max > s.next {
			s.next = max
		}
		s.seeded = true
	}
	s.next++
	return s.next, nil
}

// observe folds an explicit client-chosen oid into the sequence so a
// later auto-assign never reuses it.
func (s *docSeq) observe(doc bat.OID) {
	s.mu.Lock()
	if doc > s.next {
		s.next = doc
	}
	s.mu.Unlock()
}

// Coordinator is the central serving site: named search indexes, each
// a shared-nothing dist.Cluster of local and/or remote nodes.
type Coordinator struct {
	indexes map[string]*dist.Cluster
	seqs    map[string]*docSeq // auto-assigned doc oids per index
	cfg     CoordinatorConfig
	start   time.Time
	sem     *semaphore

	searches atomic.Uint64
	adds     atomic.Uint64
	queries  atomic.Uint64
	streams  atomic.Uint64
	errs     atomic.Uint64

	// engineMu guards cfg.Engine: /query executes under the read lock,
	// /add/stream's conceptual writes (and the cache warm that follows
	// them) under the write lock. When a stream in flight has left the
	// derived caches invalidated, /query upgrades to the write lock to
	// re-warm them before executing — readers never lazily rebuild.
	engineMu sync.RWMutex

	// queryLatency holds the /query end-to-end latency histogram, nil
	// without a registry.
	queryLatency *obs.Histogram

	// latency and quality hold the per-index /search histograms
	// (seconds / QualityEstimate.Value), nil maps without a registry.
	latency map[string]*obs.Histogram
	quality map[string]*obs.Histogram

	// sloBudget and sloPredErr hold the per-index controller
	// histograms: chosen budgets and |achieved − predicted| latency.
	// nil maps without a registry or a controller.
	sloBudget  map[string]*obs.Histogram
	sloPredErr map[string]*obs.Histogram
}

// NewCoordinator builds a coordinator over named clusters. The map
// must contain at least one index; a nil cfg selects defaults.
//
// Document oids auto-assigned by /add continue after the highest oid
// already on the nodes, so they survive a coordinator restart and
// coexist with explicit oids (as long as only one coordinator writes
// at a time).
func NewCoordinator(indexes map[string]*dist.Cluster, cfg *CoordinatorConfig) *Coordinator {
	co := &Coordinator{
		indexes: indexes,
		seqs:    make(map[string]*docSeq, len(indexes)),
		start:   time.Now(),
	}
	if cfg != nil {
		co.cfg = *cfg
	}
	if co.cfg.MaxBody <= 0 {
		co.cfg.MaxBody = DefaultMaxBody
	}
	if co.cfg.MaxConcurrent <= 0 {
		co.cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if co.cfg.MaxTopN <= 0 {
		co.cfg.MaxTopN = DefaultMaxTopN
	}
	for name := range indexes {
		co.seqs[name] = &docSeq{}
	}
	co.sem = newSemaphore(co.cfg.MaxConcurrent)
	if e := co.cfg.Engine; e != nil {
		// Build the derived access paths before the first concurrent
		// /query: they are otherwise filled lazily on first use, which
		// would race between parallel readers.
		e.DB.Warm()
	}
	if ctl := co.cfg.SLO; ctl != nil {
		// Close the control loop: every node of every cluster feeds its
		// cost samples into the index's quality/latency curve.
		for name, cluster := range indexes {
			cluster.SetCostCurve(ctl.Curve(name))
		}
	}
	if reg := co.cfg.Metrics; reg != nil {
		reg.RegisterRuntimeGauges()
		reg.CounterFunc("dl_coordinator_requests_total",
			"Coordinator requests served, by operation.",
			obs.Labels("op", "search"), co.searches.Load)
		reg.CounterFunc("dl_coordinator_requests_total", "",
			obs.Labels("op", "add"), co.adds.Load)
		reg.CounterFunc("dl_coordinator_requests_total", "",
			obs.Labels("op", "query"), co.queries.Load)
		reg.CounterFunc("dl_coordinator_requests_total", "",
			obs.Labels("op", "add_stream"), co.streams.Load)
		if co.cfg.Engine != nil {
			co.queryLatency = reg.Histogram("dl_query_latency_seconds",
				"End-to-end conceptual /query latency.",
				"", obs.LatencyBounds())
		}
		reg.CounterFunc("dl_coordinator_errors_total",
			"Coordinator requests answered with an error status.",
			"", co.errs.Load)
		reg.CounterFunc("dl_coordinator_shed_total",
			"Requests shed with 503 because the concurrency semaphore was full.",
			"", co.sem.Shed)
		reg.GaugeFunc("dl_coordinator_in_flight",
			"Requests currently holding a concurrency-semaphore slot.",
			"", func() float64 { return float64(co.sem.InFlight()) })
		reg.GaugeFunc("dl_coordinator_waiting",
			"Requests blocked waiting for a concurrency-semaphore slot (adaptive admission only).",
			"", func() float64 { return float64(co.sem.Waiting()) })
		co.latency = make(map[string]*obs.Histogram, len(indexes))
		co.quality = make(map[string]*obs.Histogram, len(indexes))
		if ctl := co.cfg.SLO; ctl != nil {
			co.sloBudget = make(map[string]*obs.Histogram, len(indexes))
			co.sloPredErr = make(map[string]*obs.Histogram, len(indexes))
			budgetBounds := make([]float64, ctl.MaxBudget())
			for i := range budgetBounds {
				budgetBounds[i] = float64(i + 1)
			}
			for name := range indexes {
				ix, lbl := name, obs.Labels("index", name)
				cnt := func(f func(slo.Counters) uint64) func() uint64 {
					return func() uint64 { return f(ctl.Counters(ix)) }
				}
				reg.CounterFunc("dl_slo_decisions_total",
					"Budget-controller decisions taken, by index.",
					lbl, cnt(func(c slo.Counters) uint64 { return c.Decisions }))
				reg.CounterFunc("dl_slo_degraded_total",
					"Decisions that chose a below-full-quality budget, by index.",
					lbl, cnt(func(c slo.Counters) uint64 { return c.Degraded }))
				reg.CounterFunc("dl_slo_overrides_total",
					"Requests that overrode the SLO target via slo_ms, by index.",
					lbl, cnt(func(c slo.Counters) uint64 { return c.Overrides }))
				reg.CounterFunc("dl_slo_floor_hits_total",
					"Decisions clamped upward by the quality floor, by index.",
					lbl, cnt(func(c slo.Counters) uint64 { return c.FloorHits }))
				reg.CounterFunc("dl_slo_rejected_total",
					"Queries refused because the quality floor left nothing to shed, by index.",
					lbl, cnt(func(c slo.Counters) uint64 { return c.Rejected }))
				reg.CounterFunc("dl_slo_probes_total",
					"Decisions that explored one budget above the choice to refresh stale curve points, by index.",
					lbl, cnt(func(c slo.Counters) uint64 { return c.Probes }))
				reg.GaugeFunc("dl_slo_shed_level",
					"Admission-pressure shed level of the latest decision, by index.",
					lbl, func() float64 { return float64(ctl.Counters(ix).ShedLevel) })
				co.sloBudget[name] = reg.Histogram("dl_slo_budget",
					"Fragment budgets the controller chose, by index.",
					lbl, budgetBounds)
				co.sloPredErr[name] = reg.Histogram("dl_slo_prediction_error_seconds",
					"Absolute error of the curve's latency prediction, by index.",
					lbl, obs.LatencyBounds())
			}
		}
		for name, c := range indexes {
			co.latency[name] = reg.Histogram("dl_search_latency_seconds",
				"End-to-end /search latency by index.",
				obs.Labels("index", name), obs.LatencyBounds())
			co.quality[name] = reg.Histogram("dl_search_quality",
				"Served quality estimate (QualityEstimate.Value) by index.",
				obs.Labels("index", name), obs.QualityBounds())
			cl := c
			tel := func(f func(dist.Telemetry) uint64) func() uint64 {
				return func() uint64 { return f(cl.Telemetry()) }
			}
			lbl := obs.Labels("index", name)
			reg.CounterFunc("dl_cluster_searches_total",
				"Searches fanned out over the cluster, by index.",
				lbl, tel(func(t dist.Telemetry) uint64 { return t.Searches }))
			reg.CounterFunc("dl_cluster_failovers_total",
				"Replica failovers the routed calls needed, by index.",
				lbl, tel(func(t dist.Telemetry) uint64 { return t.Failovers }))
			reg.CounterFunc("dl_cluster_dropped_nodes_total",
				"Partitions dropped from merged rankings, by index.",
				lbl, tel(func(t dist.Telemetry) uint64 { return t.Dropped }))
			reg.CounterFunc("dl_cluster_resyncs_total",
				"Replicas healed from a group member, by index.",
				lbl, tel(func(t dist.Telemetry) uint64 { return t.Resyncs }))
			reg.CounterFunc("dl_cluster_divergence_detected_total",
				"Divergences anti-entropy checksum comparison caught, by index.",
				lbl, tel(func(t dist.Telemetry) uint64 { return t.DivergenceDetected }))
			reg.CounterFunc("dl_cluster_resync_bytes_total",
				"Bytes resyncs shipped (delta and full), by index.",
				lbl, tel(func(t dist.Telemetry) uint64 { return t.ResyncBytes }))
		}
	}
	return co
}

// Handler returns the coordinator's HTTP handler: POST /search,
// POST /query, POST /add, POST /add/batch, POST /add/stream,
// POST /anti-entropy, GET /stats, GET /healthz.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", co.search)
	mux.HandleFunc("/query", co.query)
	mux.HandleFunc("/add", co.add)
	mux.HandleFunc("/add/batch", co.addBatch)
	mux.HandleFunc("/add/stream", co.addStream)
	mux.HandleFunc("/stats", co.statsHandler)
	mux.HandleFunc("/anti-entropy", co.antiEntropy)
	// The health probe bypasses the semaphore: a saturated
	// coordinator is busy, not dead, and must not be ejected by its
	// load balancer.
	outer := http.NewServeMux()
	outer.HandleFunc(dist.PathHealthz, co.healthz)
	// /metrics also bypasses the semaphore: a saturated coordinator is
	// precisely when its telemetry matters most.
	if co.cfg.Metrics != nil {
		outer.Handle("/metrics", co.cfg.Metrics.Handler())
	}
	// Adaptive serving moves /search outside the semaphore wrapper: the
	// handler does its own admission (blocking acquire + quality
	// shedding) instead of the wrapper's immediate 503.
	if co.cfg.SLO != nil {
		outer.HandleFunc("/search", co.search)
	}
	outer.Handle("/", co.sem.wrap(mux))
	return outer
}

// resolveIndex maps a request's index name to its cluster; an empty
// name selects the sole index when exactly one is served.
func (co *Coordinator) resolveIndex(w http.ResponseWriter, name string) (*dist.Cluster, string, bool) {
	if name == "" {
		if len(co.indexes) == 1 {
			for n, c := range co.indexes {
				return c, n, true
			}
		}
		fail(w, http.StatusBadRequest, "missing index name")
		return nil, "", false
	}
	c, ok := co.indexes[name]
	if !ok {
		fail(w, http.StatusNotFound, "unknown index: "+name)
		return nil, "", false
	}
	return c, name, true
}

// SearchRequest is the body of POST /search. Frags, Budget and
// MinQuality select a fragment-budgeted evaluation plan (defaults come
// from the coordinator's config); the same knobs are also accepted as
// URL query parameters — `/search?frag=2` — which take precedence, so
// a curl user can sweep the cost/quality trade-off without editing the
// body.
type SearchRequest struct {
	Index string `json:"index,omitempty"`
	Query string `json:"query"`
	N     int    `json:"n"`
	// Frags is the per-node fragmentation granularity (0 = keep the
	// node's current one). Absent fields keep the coordinator's
	// configured defaults; present fields override them — including
	// explicit zeros, so "budget": 0 requests the exact search even
	// when the coordinator defaults to a budget.
	Frags *int `json:"frags,omitempty"`
	// Budget is how many leading idf-descending fragments each node
	// evaluates; 0 means all — the exact search.
	Budget *int `json:"budget,omitempty"`
	// MinQuality is the quality floor in [0, 1]; 0 disables it.
	MinQuality *float64 `json:"min_quality,omitempty"`
	// SLOMs overrides the coordinator's target latency SLO for this
	// request, in milliseconds (adaptive coordinators only; also
	// accepted as `?slo_ms=`). 0 means "no latency target": only
	// pressure shedding applies.
	SLOMs *float64 `json:"slo_ms,omitempty"`
}

// SearchResponse answers POST /search. Complete is false when the
// ranking is degraded in either way the cluster models: partitions
// were dropped (the ranking covers the responsive partitions only)
// and/or it was scored with stale global statistics. Failovers counts
// replica failovers this search needed — a non-zero count with
// Complete still true is the replication subsystem absorbing a node
// failure without degrading the ranking. Quality is the cluster-wide
// estimate of a budgeted search (value 1 for exact searches).
type SearchResponse struct {
	Index     string            `json:"index"`
	Results   []dist.ResultJSON `json:"results"`
	Quality   dist.QualityJSON  `json:"quality"`
	Dropped   []int             `json:"dropped,omitempty"`
	Failovers int               `json:"failovers,omitempty"`
	// Diverged lists partitions answered by a replica known to be
	// missing committed writes — the ranking may lack documents.
	Diverged   []int `json:"diverged,omitempty"`
	StaleStats bool  `json:"stale_stats,omitempty"`
	Complete   bool  `json:"complete"`
}

func (co *Coordinator) search(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	// Every /search gets a trace: a client-supplied X-DL-Request is
	// honoured (so an upstream proxy can stitch its own trace through),
	// otherwise a fresh ID is generated. The ID is echoed in the
	// response header and propagated to every node RPC this search
	// fans out to, so coordinator- and node-side slow-query log lines
	// for one query join on it.
	tr := obs.NewTrace(r.Header.Get(obs.HeaderRequestID))
	w.Header().Set(obs.HeaderRequestID, tr.ID)
	parseStart := time.Now()
	var req SearchRequest
	if !readJSON(w, r, co.cfg.MaxBody, &req) {
		co.errs.Add(1)
		return
	}
	if req.Query == "" {
		co.errs.Add(1)
		fail(w, http.StatusBadRequest, "missing query")
		return
	}
	if req.N <= 0 {
		co.errs.Add(1)
		fail(w, http.StatusBadRequest, "n must be positive")
		return
	}
	if req.N > co.cfg.MaxTopN {
		req.N = co.cfg.MaxTopN
	}
	plan, explicitBudget, ok := co.buildPlan(w, r, &req)
	if !ok {
		co.errs.Add(1)
		return
	}
	cluster, name, ok := co.resolveIndex(w, req.Index)
	if !ok {
		co.errs.Add(1)
		return
	}
	tr.AddSpan("parse", parseStart)
	ctx := obs.NewContext(r.Context(), tr)
	if co.cfg.SearchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, co.cfg.SearchTimeout)
		defer cancel()
	}
	// Adaptive admission: Handler routed /search around the semaphore
	// wrapper, so this handler claims the slot itself — deciding a
	// (possibly degraded) budget first, blocking for capacity instead
	// of 503ing, and rejecting only decisions clamped at the quality
	// floor under heavy occupancy. Requests that pinned their own
	// budget keep the classic contract: immediate 503 when saturated.
	var dec *slo.Decision
	if ctl := co.cfg.SLO; ctl != nil {
		admitStart := time.Now()
		if explicitBudget {
			if !co.sem.TryAcquire() {
				co.errs.Add(1)
				fail(w, http.StatusServiceUnavailable, "server at capacity")
				return
			}
		} else {
			target, ok := co.sloTarget(w, r, &req, ctl, name)
			if !ok {
				co.errs.Add(1)
				return
			}
			occupancy := float64(co.sem.InFlight()+co.sem.Waiting()+1) / float64(co.sem.Limit())
			d := ctl.Decide(name, target, occupancy)
			dec = &d
			if d.Reject {
				co.errs.Add(1)
				fail(w, http.StatusServiceUnavailable, "server at capacity: quality floor reached")
				return
			}
			plan.Budget = d.Budget
			if !co.sem.Acquire(ctx) {
				co.errs.Add(1)
				fail(w, http.StatusServiceUnavailable, "timed out waiting for capacity")
				return
			}
		}
		defer co.sem.Release()
		tr.AddSpan("admit", admitStart)
	}
	sr, err := cluster.SearchPlan(ctx, req.Query, plan)
	if err != nil {
		co.errs.Add(1)
		co.observeSearch(name, tr, &req, nil, dec)
		fail(w, http.StatusBadGateway, "cluster unavailable: "+err.Error())
		return
	}
	co.searches.Add(1)
	writeJSON(w, http.StatusOK, SearchResponse{
		Index:      name,
		Results:    dist.ResultsToJSON(sr.Results),
		Quality:    dist.QualityToJSON(sr.Quality),
		Dropped:    sr.Dropped,
		Failovers:  sr.FailoverTotal(),
		Diverged:   sr.Diverged,
		StaleStats: sr.StaleStats,
		Complete:   sr.Complete(),
	})
	co.observeSearch(name, tr, &req, sr, dec)
}

// sloTarget resolves the request's effective latency target: the
// per-request slo_ms override (query parameter over body field) or
// the controller's configured SLO. Overrides are validated (400 on a
// malformed or negative value) and counted per index.
func (co *Coordinator) sloTarget(w http.ResponseWriter, r *http.Request, req *SearchRequest, ctl *slo.Controller, name string) (time.Duration, bool) {
	target := ctl.Target()
	override := false
	if req.SLOMs != nil {
		if *req.SLOMs < 0 {
			fail(w, http.StatusBadRequest, "slo_ms must be non-negative")
			return 0, false
		}
		target = time.Duration(*req.SLOMs * float64(time.Millisecond))
		override = true
	}
	if v := r.URL.Query().Get("slo_ms"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			fail(w, http.StatusBadRequest, "bad slo_ms parameter: "+v)
			return 0, false
		}
		target = time.Duration(f * float64(time.Millisecond))
		override = true
	}
	if override {
		ctl.RecordOverride(name)
	}
	return target, true
}

// observeSearch records one finished /search into the per-index
// latency and quality histograms and, when configured, the slow-query
// log. sr is nil for a failed search (latency still observed). dec is
// the budget controller's decision for adaptively served queries: the
// chosen budget and the prediction error land in the dl_slo_*
// histograms, and the whole decision in the slow-query record.
func (co *Coordinator) observeSearch(name string, tr *obs.Trace, req *SearchRequest, sr *dist.SearchResult, dec *slo.Decision) {
	took := tr.Elapsed()
	if h := co.latency[name]; h != nil {
		h.Observe(took.Seconds())
	}
	rec := obs.SlowQueryRecord{
		Role:  "coordinator",
		Index: name,
		Query: req.Query,
	}
	if sr != nil {
		rec.Quality = sr.Quality.Value()
		rec.Results = len(sr.Results)
		if h := co.quality[name]; h != nil {
			h.Observe(rec.Quality)
		}
	}
	if dec != nil {
		if h := co.sloBudget[name]; h != nil {
			h.Observe(float64(dec.Budget))
		}
		if h := co.sloPredErr[name]; h != nil && dec.Predicted > 0 {
			err := (took - dec.Predicted).Seconds()
			if err < 0 {
				err = -err
			}
			h.Observe(err)
		}
		rec.SLO = &obs.SLOJSON{
			Budget:      dec.Budget,
			PredictedMS: float64(dec.Predicted) / float64(time.Millisecond),
			AchievedMS:  float64(took) / float64(time.Millisecond),
			Confidence:  dec.Confidence,
			ShedLevel:   dec.ShedLevel,
			Degraded:    dec.Degraded,
			FloorHit:    dec.FloorHit,
		}
	}
	co.cfg.SlowQuery.Record(tr, rec)
}

// buildPlan folds the config defaults, the request body and the URL
// query parameters (highest precedence) into the evaluation plan,
// answering 400 on malformed parameters itself. Body fields are held
// to the same validity rules as their query-parameter spellings.
// explicit reports whether the request pinned the budget itself (body
// `budget` or `?frag=`) — such requests bypass the budget controller.
func (co *Coordinator) buildPlan(w http.ResponseWriter, r *http.Request, req *SearchRequest) (plan ir.EvalPlan, explicit, ok bool) {
	plan, ok = co.buildPlanInner(w, r, req)
	explicit = req.Budget != nil || r.URL.Query().Get("frag") != ""
	return plan, explicit, ok
}

func (co *Coordinator) buildPlanInner(w http.ResponseWriter, r *http.Request, req *SearchRequest) (ir.EvalPlan, bool) {
	plan := ir.EvalPlan{
		N:          req.N,
		Frags:      co.cfg.Frags,
		Budget:     co.cfg.FragBudget,
		MinQuality: co.cfg.MinQuality,
	}
	if req.Frags != nil {
		if *req.Frags < 0 {
			fail(w, http.StatusBadRequest, "frags must be non-negative")
			return plan, false
		}
		plan.Frags = *req.Frags
	}
	if req.Budget != nil {
		if *req.Budget < 0 {
			fail(w, http.StatusBadRequest, "budget must be non-negative")
			return plan, false
		}
		plan.Budget = *req.Budget
	}
	if req.MinQuality != nil {
		if *req.MinQuality < 0 || *req.MinQuality > 1 {
			fail(w, http.StatusBadRequest, "min_quality must be in [0, 1]")
			return plan, false
		}
		plan.MinQuality = *req.MinQuality
	}
	q := r.URL.Query()
	intParam := func(name string, dst *int) bool {
		v := q.Get(name)
		if v == "" {
			return true
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			fail(w, http.StatusBadRequest, "bad "+name+" parameter: "+v)
			return false
		}
		*dst = n
		return true
	}
	if !intParam("frag", &plan.Budget) || !intParam("frags", &plan.Frags) {
		return plan, false
	}
	if v := q.Get("min_quality"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			fail(w, http.StatusBadRequest, "bad min_quality parameter: "+v)
			return plan, false
		}
		plan.MinQuality = f
	}
	return plan, true
}

// AddDocRequest is the body of POST /add. Doc 0 auto-assigns the next
// oid of the index's sequence.
type AddDocRequest struct {
	Index string `json:"index,omitempty"`
	Doc   uint64 `json:"doc,omitempty"`
	URL   string `json:"url,omitempty"`
	Text  string `json:"text"`
}

// AddDocResponse reports the oid the document was indexed under and —
// with replication — how many of its partition's replicas acknowledged
// it. On failure (502) the same shape comes back with Error set.
// Ingest is idempotent per oid at the nodes, so re-posting the SAME
// document with the SAME oid is always safe: a replica that applied it
// without acknowledging (lost ack, timeout) skips it, a replica that
// missed it applies it. Committed 0 means no replica acknowledged;
// Degraded means SOME replicas committed — the document is already
// searchable and a retry heals the lagging replicas (as does the
// cluster's anti-entropy resync, without any client action).
type AddDocResponse struct {
	Index     string `json:"index"`
	Doc       uint64 `json:"doc"`
	Replicas  int    `json:"replicas,omitempty"`
	Committed int    `json:"committed,omitempty"`
	Degraded  bool   `json:"degraded,omitempty"`
	Error     string `json:"error,omitempty"`
}

func (co *Coordinator) add(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req AddDocRequest
	if !readJSON(w, r, co.cfg.MaxBody, &req) {
		co.errs.Add(1)
		return
	}
	if req.Text == "" {
		co.errs.Add(1)
		fail(w, http.StatusBadRequest, "missing text")
		return
	}
	cluster, name, ok := co.resolveIndex(w, req.Index)
	if !ok {
		co.errs.Add(1)
		return
	}
	doc := bat.OID(req.Doc)
	if doc == bat.NilOID {
		var err error
		if doc, err = co.seqs[name].assign(r.Context(), cluster); err != nil {
			co.errs.Add(1)
			fail(w, http.StatusBadGateway, "cannot assign oid: "+err.Error())
			return
		}
	} else {
		co.seqs[name].observe(doc)
	}
	// Route through the outcome-reporting path so a partial replica
	// commit is never mistaken for "not indexed, retry safe" — a blind
	// retry would double-fold term frequencies on the replica that
	// committed.
	results := cluster.AddBatchResults(r.Context(), []dist.Doc{{OID: doc, URL: req.URL, Text: req.Text}})
	p := &results[0]
	resp := AddDocResponse{Index: name, Doc: uint64(doc), Replicas: p.Replicas, Committed: p.Committed}
	if p.Err != nil {
		co.errs.Add(1)
		resp.Degraded = p.Committed > 0
		resp.Error = "node unavailable: " + p.Err.Error()
		if p.Committed > 0 {
			co.adds.Add(1) // the document IS searchable, via the survivors
		}
		writeJSON(w, http.StatusBadGateway, resp)
		return
	}
	co.adds.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// BatchDoc is one document of a coordinator batch add. Doc 0
// auto-assigns the next oid of the index's sequence.
type BatchDoc struct {
	Doc  uint64 `json:"doc,omitempty"`
	URL  string `json:"url,omitempty"`
	Text string `json:"text"`
}

// AddBatchRequest is the body of POST /add/batch: many documents in
// one request, indexed with one partition round-trip per node instead
// of one per document.
type AddBatchRequest struct {
	Index string     `json:"index,omitempty"`
	Docs  []BatchDoc `json:"docs"`
}

// BatchPartitionJSON is one partition's commit outcome of a batch add:
// which of the batch's documents were routed to it and how many of its
// replicas committed them.
type BatchPartitionJSON struct {
	Partition int      `json:"partition"`
	Docs      []uint64 `json:"docs"`
	Replicas  int      `json:"replicas"`
	Committed int      `json:"committed"`
	Error     string   `json:"error,omitempty"`
}

// AddBatchResponse reports the oids the documents were indexed under,
// in request order, plus the per-partition commit outcomes. Partition
// groups commit independently. Ingest is idempotent per oid at the
// nodes, so re-posting documents with the oids this response assigned
// is always safe — already-applied documents are skipped, never
// double-folded — and a retry of a partially committed partition heals
// its lagging replicas:
//
//   - Failed lists the documents of partitions NO replica
//     acknowledged: retry them with the same oids (including after
//     timeouts — a node that applied the batch without the
//     acknowledgement arriving skips the replay).
//   - Degraded lists partitions where SOME but not all replicas
//     committed (documents searchable; a retry with the same oids
//     converges the lagging replicas) or where a node without
//     idempotent ingest applied an unknown prefix (third-party nodes
//     only — verify before re-ingesting there). Left alone, the
//     cluster's anti-entropy pass detects and resyncs the lagging
//     replicas without client action.
type AddBatchResponse struct {
	Index      string               `json:"index"`
	Docs       []uint64             `json:"docs"`
	Partitions []BatchPartitionJSON `json:"partitions,omitempty"`
	Failed     []uint64             `json:"failed,omitempty"`
	Degraded   []int                `json:"degraded,omitempty"`
	Error      string               `json:"error,omitempty"`
}

// readBatchJSON decodes an AddBatchRequest under the same byte cap and
// status contract as readJSON (400 malformed / trailing data, 413
// oversized), but walks the docs array one element at a time so a JSON
// error inside it is reported with the offending document index —
// "malformed JSON in docs[17]: ..." instead of a bare decode error the
// client cannot locate in a thousand-document batch.
func readBatchJSON(w http.ResponseWriter, r *http.Request, maxBody int64, req *AddBatchRequest) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	dec := json.NewDecoder(r.Body)
	handle := func(err error, context string) bool {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			fail(w, http.StatusRequestEntityTooLarge, "request body too large")
		} else {
			fail(w, http.StatusBadRequest, "malformed JSON"+context+": "+err.Error())
		}
		return false
	}
	tok, err := dec.Token()
	if err != nil {
		return handle(err, "")
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		fail(w, http.StatusBadRequest, "malformed JSON: request body must be an object")
		return false
	}
	for dec.More() {
		keyTok, err := dec.Token()
		if err != nil {
			return handle(err, "")
		}
		key, _ := keyTok.(string)
		switch key {
		case "docs":
			tok, err := dec.Token()
			if err != nil {
				return handle(err, " in docs")
			}
			if tok == nil { // "docs": null
				continue
			}
			if d, ok := tok.(json.Delim); !ok || d != '[' {
				fail(w, http.StatusBadRequest, "malformed JSON: docs must be an array")
				return false
			}
			for dec.More() {
				var bd BatchDoc
				if err := dec.Decode(&bd); err != nil {
					return handle(err, " in docs["+strconv.Itoa(len(req.Docs))+"]")
				}
				req.Docs = append(req.Docs, bd)
			}
			if _, err := dec.Token(); err != nil { // closing ']'
				return handle(err, " in docs")
			}
		case "index":
			if err := dec.Decode(&req.Index); err != nil {
				return handle(err, " in index")
			}
		default:
			var raw json.RawMessage
			if err := dec.Decode(&raw); err != nil {
				return handle(err, "")
			}
		}
	}
	if _, err := dec.Token(); err != nil { // closing '}'
		return handle(err, "")
	}
	if dec.More() {
		fail(w, http.StatusBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

func (co *Coordinator) addBatch(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req AddBatchRequest
	if !readBatchJSON(w, r, co.cfg.MaxBody, &req) {
		co.errs.Add(1)
		return
	}
	if len(req.Docs) == 0 {
		co.errs.Add(1)
		fail(w, http.StatusBadRequest, "empty docs array")
		return
	}
	for i, d := range req.Docs {
		if d.Text == "" {
			co.errs.Add(1)
			fail(w, http.StatusBadRequest, "missing text in docs["+strconv.Itoa(i)+"]")
			return
		}
	}
	cluster, name, ok := co.resolveIndex(w, req.Index)
	if !ok {
		co.errs.Add(1)
		return
	}
	docs := make([]dist.Doc, len(req.Docs))
	oids := make([]uint64, len(req.Docs))
	for i, d := range req.Docs {
		doc := bat.OID(d.Doc)
		if doc == bat.NilOID {
			var err error
			if doc, err = co.seqs[name].assign(r.Context(), cluster); err != nil {
				co.errs.Add(1)
				fail(w, http.StatusBadGateway, "cannot assign oid: "+err.Error())
				return
			}
		} else {
			co.seqs[name].observe(doc)
		}
		docs[i] = dist.Doc{OID: doc, URL: d.URL, Text: d.Text}
		oids[i] = uint64(doc)
	}
	results := cluster.AddBatchResults(r.Context(), docs)
	resp := AddBatchResponse{Index: name, Docs: oids}
	committed := 0
	failedParts := 0
	for i := range results {
		p := &results[i]
		pj := BatchPartitionJSON{
			Partition: p.Partition,
			Docs:      make([]uint64, len(p.Docs)),
			Replicas:  p.Replicas,
			Committed: p.Committed,
		}
		for j, oid := range p.Docs {
			pj.Docs[j] = uint64(oid)
		}
		if p.Err != nil {
			pj.Error = p.Err.Error()
		}
		resp.Partitions = append(resp.Partitions, pj)
		switch {
		case p.Err == nil:
			committed += len(p.Docs)
		case p.Failed():
			failedParts++
			for _, oid := range p.Docs {
				resp.Failed = append(resp.Failed, uint64(oid))
			}
		case p.Committed == 0:
			// Ambiguous: a replica applied part of the batch before
			// failing — not searchable as a whole, not retry-safe.
			resp.Degraded = append(resp.Degraded, p.Partition)
		default:
			// Partially committed: searchable, but replicas diverged.
			resp.Degraded = append(resp.Degraded, p.Partition)
			committed += len(p.Docs)
		}
	}
	co.adds.Add(uint64(committed))
	if len(resp.Failed) > 0 || len(resp.Degraded) > 0 {
		co.errs.Add(1)
		resp.Error = fmt.Sprintf("partial commit: %d partitions failed, %d degraded — retry only the docs in 'failed'",
			failedParts, len(resp.Degraded))
		writeJSON(w, http.StatusBadGateway, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse answers GET /stats.
type StatsResponse struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Requests      RequestStats          `json:"requests"`
	Concurrency   *ConcurrencyStats     `json:"concurrency,omitempty"`
	Indexes       map[string]IndexStats `json:"indexes"`
	QueryCache    *QueryCacheStats      `json:"query_cache,omitempty"`
}

// ConcurrencyStats reports the coordinator's semaphore pressure: how
// many requests are in flight right now, the configured limit, and
// how many requests overload has shed with a 503 since boot.
type ConcurrencyStats struct {
	InFlight int `json:"in_flight"`
	Limit    int `json:"limit"`
	// Waiting counts requests blocked for a slot (adaptive admission
	// queues instead of shedding).
	Waiting int    `json:"waiting,omitempty"`
	Shed    uint64 `json:"shed_503_total"`
}

// QuantilesJSON summarises a histogram for /stats: count, mean and
// interpolated p50/p95/p99 (each accurate to its bucket's width).
type QuantilesJSON struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// quantilesJSON renders a histogram snapshot, scaling every value by
// scale (1e3 turns seconds into milliseconds). nil for an empty or
// absent histogram.
func quantilesJSON(h *obs.Histogram, scale float64) *QuantilesJSON {
	snap := h.Snapshot()
	if snap.Count == 0 {
		return nil
	}
	return &QuantilesJSON{
		Count: snap.Count,
		Mean:  snap.Mean() * scale,
		P50:   snap.Quantile(0.50) * scale,
		P95:   snap.Quantile(0.95) * scale,
		P99:   snap.Quantile(0.99) * scale,
	}
}

// RequestStats are the coordinator's cumulative request counters.
type RequestStats struct {
	Search uint64 `json:"search"`
	Add    uint64 `json:"add"`
	Errors uint64 `json:"errors"`
}

// IndexStats describes one served index: its partitions, their
// replicas' health, and the cluster's cumulative availability
// counters. Error is set when the load read was partial (a whole
// replica group was unreachable): Docs then undercounts and must not
// be read as data loss.
type IndexStats struct {
	Nodes     int   `json:"nodes"` // partitions (replica groups)
	Docs      int   `json:"docs"`
	NodeLoads []int `json:"node_loads"` // per partition, replicas counted once
	// Groups reports every replica of every partition: reachability,
	// routing health and snapshot age.
	Groups []GroupStats `json:"groups,omitempty"`
	// Searches/Failovers/DroppedNodes are the cluster's cumulative
	// availability counters: how many searches fanned out, how many
	// replica failovers they needed, and how many partitions were
	// dropped from merged rankings.
	Searches     uint64 `json:"searches"`
	Failovers    uint64 `json:"failovers"`
	DroppedNodes uint64 `json:"dropped_nodes"`
	// Resyncs/DivergenceDetected are the self-healing counters: how
	// many replicas were healed from a group member's snapshot, and how
	// many divergences anti-entropy checksum comparison caught.
	Resyncs            uint64 `json:"resyncs"`
	DivergenceDetected uint64 `json:"divergence_detected"`
	// ResyncsDelta/ResyncsFull split Resyncs by transfer strategy
	// (op-log suffix vs whole snapshot); ResyncBytes totals the bytes
	// resyncs shipped either way — the number the op log is meant to
	// keep far below fragments × snapshot size.
	ResyncsDelta uint64 `json:"resyncs_delta"`
	ResyncsFull  uint64 `json:"resyncs_full"`
	ResyncBytes  uint64 `json:"resync_bytes"`
	// LatencyMS and Quality summarise this coordinator's served
	// /search outcomes for the index — p50/p95/p99 end-to-end latency
	// in milliseconds, and the distribution of served quality
	// estimates. Absent until a search was served (or without a
	// Metrics registry).
	LatencyMS *QuantilesJSON `json:"latency_ms,omitempty"`
	Quality   *QuantilesJSON `json:"quality,omitempty"`
	// SLO is the budget controller's state for this index — the
	// learned quality/latency curve, the current shed level, and the
	// decision counters. Absent on non-adaptive coordinators.
	SLO *slo.IndexStats `json:"slo,omitempty"`
	// QueryCache reports this index's own query cache in multi-index
	// mode, where each local cluster owns one (CoordinatorConfig.Caches);
	// a single shared cache reports top-level instead.
	QueryCache *QueryCacheStats `json:"query_cache,omitempty"`
	Error      string           `json:"error,omitempty"`
}

// GroupStats is one partition's replica set.
type GroupStats struct {
	Partition int            `json:"partition"`
	Replicas  []ReplicaStats `json:"replicas"`
}

// ReplicaStats is one replica's probe result: its load (when
// reachable), routing health, and how old its last snapshot is.
type ReplicaStats struct {
	Docs      int    `json:"docs"`
	MaxDoc    uint64 `json:"max_doc"`
	Reachable bool   `json:"reachable"`
	Healthy   bool   `json:"healthy"` // last call succeeded AND not diverged
	// Diverged marks a replica whose copy differs from its group's
	// committed state (failed write or anti-entropy checksum mismatch);
	// it is quarantined until resynced or restored.
	Diverged  bool   `json:"diverged,omitempty"`
	Fails     uint64 `json:"fails,omitempty"`
	LastError string `json:"last_error,omitempty"`
	// Checksum is the replica's content checksum — replicas of a group
	// serving identical documents report identical checksums, which is
	// exactly what anti-entropy verifies.
	Checksum string `json:"checksum,omitempty"`
	// SnapshotUnix / SnapshotAgeSeconds report durability lag: when the
	// replica last persisted a snapshot (0 / absent = never).
	SnapshotUnix       int64   `json:"snapshot_unix,omitempty"`
	SnapshotAgeSeconds float64 `json:"snapshot_age_seconds,omitempty"`
	// ResyncUnix / ResyncAgeSeconds report when the replica last healed
	// from a group member (absent = never).
	ResyncUnix       int64   `json:"resync_unix,omitempty"`
	ResyncAgeSeconds float64 `json:"resync_age_seconds,omitempty"`
	// LogPos is the replica's op-log position (operations in its
	// history); LogLag is how many operations it trails the most
	// advanced reachable member of its group — 0 for a replica in
	// step, and the size of the delta a resync would ship otherwise.
	LogPos uint64 `json:"log_pos,omitempty"`
	LogLag uint64 `json:"log_lag,omitempty"`
	// RPCCalls / RPCAvgMS are the routed calls this coordinator made
	// to the replica and their mean latency — per-replica visibility
	// into which member of a group is slow.
	RPCCalls uint64  `json:"rpc_calls,omitempty"`
	RPCAvgMS float64 `json:"rpc_avg_ms,omitempty"`
	// WireCodec is the codec this coordinator effectively speaks to
	// the replica — "wire" (persistent-connection transport),
	// "binary" (HTTP binary bodies), "json", or "json-fallback" (the
	// peer refused binary); absent for in-process replicas. The byte
	// counters cover request and response bodies over every codec, so
	// a codec rollout is verifiable per replica from /stats alone.
	WireCodec    string `json:"wire_codec,omitempty"`
	WireBytesIn  uint64 `json:"wire_bytes_in,omitempty"`
	WireBytesOut uint64 `json:"wire_bytes_out,omitempty"`
}

// wireInfoNode is the optional interface a cluster node implements to
// report its client-side codec and traffic (dist.RemoteNode does).
type wireInfoNode interface {
	WireInfo() (codec string, bytesIn, bytesOut uint64)
}

// QueryCacheStats are the engine's query-side cache counters: term
// resolutions and cached RES sets (rankings) separately.
type QueryCacheStats struct {
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Entries     int    `json:"entries"`
	RankHits    uint64 `json:"rank_hits"`
	RankMisses  uint64 `json:"rank_misses"`
	RankEntries int    `json:"rank_entries"`
}

// queryCacheStats snapshots one cache's counters for /stats.
func queryCacheStats(c *core.QueryCache) *QueryCacheStats {
	hits, misses := c.Counters()
	rankHits, rankMisses := c.RankCounters()
	return &QueryCacheStats{
		Hits: hits, Misses: misses, Entries: c.Len(),
		RankHits: rankHits, RankMisses: rankMisses, RankEntries: c.RankLen(),
	}
}

func (co *Coordinator) statsHandler(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := StatsResponse{
		UptimeSeconds: time.Since(co.start).Seconds(),
		Requests: RequestStats{
			Search: co.searches.Load(),
			Add:    co.adds.Load(),
			Errors: co.errs.Load(),
		},
		Indexes: make(map[string]IndexStats, len(co.indexes)),
	}
	resp.Concurrency = &ConcurrencyStats{
		InFlight: co.sem.InFlight(),
		Limit:    co.sem.Limit(),
		Waiting:  co.sem.Waiting(),
		Shed:     co.sem.Shed(),
	}
	names := make([]string, 0, len(co.indexes))
	for name := range co.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	now := time.Now()
	for _, name := range names {
		c := co.indexes[name]
		tel := c.Telemetry()
		st := IndexStats{
			Nodes:              c.Size(),
			NodeLoads:          make([]int, c.Size()),
			Searches:           tel.Searches,
			Failovers:          tel.Failovers,
			DroppedNodes:       tel.Dropped,
			Resyncs:            tel.Resyncs,
			DivergenceDetected: tel.DivergenceDetected,
			ResyncsDelta:       tel.ResyncsDelta,
			ResyncsFull:        tel.ResyncsFull,
			ResyncBytes:        tel.ResyncBytes,
			LatencyMS:          quantilesJSON(co.latency[name], 1e3),
			Quality:            quantilesJSON(co.quality[name], 1),
		}
		if ctl := co.cfg.SLO; ctl != nil {
			s := ctl.Stats(name)
			st.SLO = &s
		}
		if c := co.cfg.Caches[name]; c != nil {
			st.QueryCache = queryCacheStats(c)
		}
		// One probe of every replica serves both views: the per-replica
		// report AND the per-partition loads (replicas counted once) —
		// /stats never routes through the failover path nor touches
		// routing health. The partition's doc count comes from the first
		// reachable HEALTHY replica, matching the routing layer's
		// preference: a freshly wiped or diverged replica must not make
		// the partition's committed documents look lost while a healthy
		// member holds them all. Only a group with no healthy reachable
		// member falls back to whatever replica answers.
		for g, reps := range c.ReplicaInfoContext(r.Context()) {
			gs := GroupStats{Partition: g, Replicas: make([]ReplicaStats, len(reps))}
			countFrom := -1
			for ri, info := range reps {
				if info.Err != nil {
					continue
				}
				if info.Health.Healthy() {
					countFrom = ri
					break
				}
				if countFrom == -1 {
					countFrom = ri
				}
			}
			// The group's most advanced reachable position defines each
			// member's replication lag.
			var maxPos uint64
			for _, info := range reps {
				if info.Err == nil && info.Load.LogPos > maxPos {
					maxPos = info.Load.LogPos
				}
			}
			counted := false
			for ri, info := range reps {
				rs := ReplicaStats{
					Reachable: info.Err == nil,
					Healthy:   info.Health.Healthy(),
					Diverged:  info.Health.Diverged,
					Fails:     info.Health.Fails,
					LastError: info.Health.LastErr,
					RPCCalls:  info.Health.RPCCalls,
				}
				if info.Health.RPCCalls > 0 {
					rs.RPCAvgMS = float64(info.Health.RPCTotalUS) / float64(info.Health.RPCCalls) / 1e3
				}
				if wn, ok := c.ReplicaAt(g, ri).(wireInfoNode); ok {
					rs.WireCodec, rs.WireBytesIn, rs.WireBytesOut = wn.WireInfo()
				}
				if info.Health.LastResyncUnix > 0 {
					rs.ResyncUnix = info.Health.LastResyncUnix
					rs.ResyncAgeSeconds = now.Sub(time.Unix(info.Health.LastResyncUnix, 0)).Seconds()
				}
				if info.Err == nil {
					rs.Docs = info.Load.Docs
					rs.MaxDoc = uint64(info.Load.MaxDoc)
					rs.Checksum = info.Load.Checksum
					rs.LogPos = info.Load.LogPos
					rs.LogLag = maxPos - info.Load.LogPos
					if info.Load.SnapshotUnix > 0 {
						rs.SnapshotUnix = info.Load.SnapshotUnix
						rs.SnapshotAgeSeconds = now.Sub(time.Unix(info.Load.SnapshotUnix, 0)).Seconds()
					}
					if ri == countFrom {
						st.NodeLoads[g] = info.Load.Docs
						st.Docs += info.Load.Docs
						counted = true
					}
				} else if rs.LastError == "" {
					rs.LastError = info.Err.Error()
				}
				gs.Replicas[ri] = rs
			}
			if !counted && st.Error == "" {
				st.Error = fmt.Sprintf("partition %d unreachable: doc count is partial", g)
			}
			st.Groups = append(st.Groups, gs)
		}
		resp.Indexes[name] = st
	}
	if co.cfg.Cache != nil {
		resp.QueryCache = queryCacheStats(co.cfg.Cache)
	}
	writeJSON(w, http.StatusOK, resp)
}

// AntiEntropyResponse answers POST /anti-entropy: one pass's outcome
// per index.
type AntiEntropyResponse struct {
	Indexes map[string]AntiEntropyIndexJSON `json:"indexes"`
}

// AntiEntropyIndexJSON is one index's anti-entropy pass summary.
type AntiEntropyIndexJSON struct {
	Detected int                      `json:"divergence_detected"`
	Cleared  int                      `json:"cleared"`
	Resynced int                      `json:"resynced"`
	Replicas []AntiEntropyReplicaJSON `json:"replicas"`
}

// AntiEntropyReplicaJSON is one replica's outcome of the pass.
type AntiEntropyReplicaJSON struct {
	Partition int    `json:"partition"`
	Replica   int    `json:"replica"`
	Docs      int    `json:"docs"`
	Checksum  string `json:"checksum,omitempty"`
	Diverged  bool   `json:"diverged,omitempty"`
	Cleared   bool   `json:"cleared,omitempty"`
	Resynced  bool   `json:"resynced,omitempty"`
	Error     string `json:"error,omitempty"`
}

// antiEntropy runs one on-demand anti-entropy pass over every served
// index (or the one named by ?index=): replica checksums are compared
// within each replica group and divergent replicas are resynced from
// their group, unless ?repair=false limits the pass to detection.
func (co *Coordinator) antiEntropy(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	repair := true
	if v := r.URL.Query().Get("repair"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			fail(w, http.StatusBadRequest, "bad repair parameter: "+v)
			return
		}
		repair = b
	}
	clusters := co.indexes
	if name := r.URL.Query().Get("index"); name != "" {
		c, ok := co.indexes[name]
		if !ok {
			fail(w, http.StatusNotFound, "unknown index: "+name)
			return
		}
		clusters = map[string]*dist.Cluster{name: c}
	}
	resp := AntiEntropyResponse{Indexes: make(map[string]AntiEntropyIndexJSON, len(clusters))}
	for name, c := range clusters {
		rep := c.CheckReplicas(r.Context(), repair)
		ij := AntiEntropyIndexJSON{
			Detected: rep.Detected,
			Cleared:  rep.Cleared,
			Resynced: rep.Resynced,
			Replicas: make([]AntiEntropyReplicaJSON, len(rep.Replicas)),
		}
		for i, chk := range rep.Replicas {
			rj := AntiEntropyReplicaJSON{
				Partition: chk.Partition,
				Replica:   chk.Replica,
				Docs:      chk.Load.Docs,
				Checksum:  chk.Load.Checksum,
				Diverged:  chk.Diverged,
				Cleared:   chk.Cleared,
				Resynced:  chk.Resynced,
			}
			if chk.Err != nil {
				rj.Error = chk.Err.Error()
			}
			ij.Replicas[i] = rj
		}
		resp.Indexes[name] = ij
	}
	writeJSON(w, http.StatusOK, resp)
}

func (co *Coordinator) healthz(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(co.indexes))
	for name := range co.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "indexes": names})
}
