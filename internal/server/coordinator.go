package server

import (
	"context"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/core"
	"dlsearch/internal/dist"
)

// CoordinatorConfig tunes a coordinator. The zero value selects the
// package defaults, no overall search deadline and no cache report.
type CoordinatorConfig struct {
	MaxBody       int64
	MaxConcurrent int
	MaxTopN       int // /search n clamp; 0 selects DefaultMaxTopN
	// SearchTimeout bounds each /search end to end. Together with the
	// clusters' per-node NodeTimeout this is the straggler policy: the
	// coordinator answers with the responsive nodes' merged ranking
	// and reports the dropped nodes. 0 means no deadline.
	SearchTimeout time.Duration
	// Cache is the engine's query-side term cache; when set its
	// hit/miss counters appear under query_cache in /stats. The local
	// nodes served by this process share it via their NodeConfig.
	Cache *core.QueryCache
}

// docSeq assigns document oids for /add requests without an explicit
// oid. The sequence seeds itself from the cluster's highest live oid
// on first use, so a freshly restarted coordinator in front of
// long-lived nodes continues after the documents already indexed
// instead of silently reusing a live oid (which would merge two
// documents). A failed add may leave an unused gap in the sequence —
// harmless, since seeding reads the true maximum, never a count.
type docSeq struct {
	mu     sync.Mutex
	next   bat.OID
	seeded bool
}

func (s *docSeq) assign(ctx context.Context, c *dist.Cluster) (bat.OID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.seeded {
		max, err := c.MaxDocContext(ctx)
		if err != nil {
			return bat.NilOID, err
		}
		// Never move backwards: observe() may have recorded a higher
		// explicit oid whose add is still in flight on a node.
		if max > s.next {
			s.next = max
		}
		s.seeded = true
	}
	s.next++
	return s.next, nil
}

// observe folds an explicit client-chosen oid into the sequence so a
// later auto-assign never reuses it.
func (s *docSeq) observe(doc bat.OID) {
	s.mu.Lock()
	if doc > s.next {
		s.next = doc
	}
	s.mu.Unlock()
}

// Coordinator is the central serving site: named search indexes, each
// a shared-nothing dist.Cluster of local and/or remote nodes.
type Coordinator struct {
	indexes map[string]*dist.Cluster
	seqs    map[string]*docSeq // auto-assigned doc oids per index
	cfg     CoordinatorConfig
	start   time.Time

	searches atomic.Uint64
	adds     atomic.Uint64
	errs     atomic.Uint64
}

// NewCoordinator builds a coordinator over named clusters. The map
// must contain at least one index; a nil cfg selects defaults.
//
// Document oids auto-assigned by /add continue after the highest oid
// already on the nodes, so they survive a coordinator restart and
// coexist with explicit oids (as long as only one coordinator writes
// at a time).
func NewCoordinator(indexes map[string]*dist.Cluster, cfg *CoordinatorConfig) *Coordinator {
	co := &Coordinator{
		indexes: indexes,
		seqs:    make(map[string]*docSeq, len(indexes)),
		start:   time.Now(),
	}
	if cfg != nil {
		co.cfg = *cfg
	}
	if co.cfg.MaxBody <= 0 {
		co.cfg.MaxBody = DefaultMaxBody
	}
	if co.cfg.MaxConcurrent <= 0 {
		co.cfg.MaxConcurrent = DefaultMaxConcurrent
	}
	if co.cfg.MaxTopN <= 0 {
		co.cfg.MaxTopN = DefaultMaxTopN
	}
	for name := range indexes {
		co.seqs[name] = &docSeq{}
	}
	return co
}

// Handler returns the coordinator's HTTP handler: POST /search,
// POST /add, GET /stats, GET /healthz.
func (co *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", co.search)
	mux.HandleFunc("/add", co.add)
	mux.HandleFunc("/stats", co.statsHandler)
	// The health probe bypasses the semaphore: a saturated
	// coordinator is busy, not dead, and must not be ejected by its
	// load balancer.
	outer := http.NewServeMux()
	outer.HandleFunc(dist.PathHealthz, co.healthz)
	outer.Handle("/", limitConcurrency(co.cfg.MaxConcurrent, mux))
	return outer
}

// resolveIndex maps a request's index name to its cluster; an empty
// name selects the sole index when exactly one is served.
func (co *Coordinator) resolveIndex(w http.ResponseWriter, name string) (*dist.Cluster, string, bool) {
	if name == "" {
		if len(co.indexes) == 1 {
			for n, c := range co.indexes {
				return c, n, true
			}
		}
		fail(w, http.StatusBadRequest, "missing index name")
		return nil, "", false
	}
	c, ok := co.indexes[name]
	if !ok {
		fail(w, http.StatusNotFound, "unknown index: "+name)
		return nil, "", false
	}
	return c, name, true
}

// SearchRequest is the body of POST /search.
type SearchRequest struct {
	Index string `json:"index,omitempty"`
	Query string `json:"query"`
	N     int    `json:"n"`
}

// SearchResponse answers POST /search. Complete is false when the
// ranking is degraded in either way the cluster models: stragglers
// were dropped (the ranking covers the responsive nodes only) and/or
// it was scored with stale global statistics.
type SearchResponse struct {
	Index      string            `json:"index"`
	Results    []dist.ResultJSON `json:"results"`
	Dropped    []int             `json:"dropped,omitempty"`
	StaleStats bool              `json:"stale_stats,omitempty"`
	Complete   bool              `json:"complete"`
}

func (co *Coordinator) search(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req SearchRequest
	if !readJSON(w, r, co.cfg.MaxBody, &req) {
		co.errs.Add(1)
		return
	}
	if req.Query == "" {
		co.errs.Add(1)
		fail(w, http.StatusBadRequest, "missing query")
		return
	}
	if req.N <= 0 {
		co.errs.Add(1)
		fail(w, http.StatusBadRequest, "n must be positive")
		return
	}
	if req.N > co.cfg.MaxTopN {
		req.N = co.cfg.MaxTopN
	}
	cluster, name, ok := co.resolveIndex(w, req.Index)
	if !ok {
		co.errs.Add(1)
		return
	}
	ctx := r.Context()
	if co.cfg.SearchTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, co.cfg.SearchTimeout)
		defer cancel()
	}
	sr, err := cluster.Search(ctx, req.Query, req.N)
	if err != nil {
		co.errs.Add(1)
		fail(w, http.StatusBadGateway, "cluster unavailable: "+err.Error())
		return
	}
	co.searches.Add(1)
	writeJSON(w, http.StatusOK, SearchResponse{
		Index:      name,
		Results:    dist.ResultsToJSON(sr.Results),
		Dropped:    sr.Dropped,
		StaleStats: sr.StaleStats,
		Complete:   sr.Complete(),
	})
}

// AddDocRequest is the body of POST /add. Doc 0 auto-assigns the next
// oid of the index's sequence.
type AddDocRequest struct {
	Index string `json:"index,omitempty"`
	Doc   uint64 `json:"doc,omitempty"`
	URL   string `json:"url,omitempty"`
	Text  string `json:"text"`
}

// AddDocResponse reports the oid the document was indexed under.
type AddDocResponse struct {
	Index string `json:"index"`
	Doc   uint64 `json:"doc"`
}

func (co *Coordinator) add(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req AddDocRequest
	if !readJSON(w, r, co.cfg.MaxBody, &req) {
		co.errs.Add(1)
		return
	}
	if req.Text == "" {
		co.errs.Add(1)
		fail(w, http.StatusBadRequest, "missing text")
		return
	}
	cluster, name, ok := co.resolveIndex(w, req.Index)
	if !ok {
		co.errs.Add(1)
		return
	}
	doc := bat.OID(req.Doc)
	if doc == bat.NilOID {
		var err error
		if doc, err = co.seqs[name].assign(r.Context(), cluster); err != nil {
			co.errs.Add(1)
			fail(w, http.StatusBadGateway, "cannot assign oid: "+err.Error())
			return
		}
	} else {
		co.seqs[name].observe(doc)
	}
	if err := cluster.AddContext(r.Context(), doc, req.URL, req.Text); err != nil {
		co.errs.Add(1)
		fail(w, http.StatusBadGateway, "node unavailable: "+err.Error())
		return
	}
	co.adds.Add(1)
	writeJSON(w, http.StatusOK, AddDocResponse{Index: name, Doc: uint64(doc)})
}

// StatsResponse answers GET /stats.
type StatsResponse struct {
	UptimeSeconds float64               `json:"uptime_seconds"`
	Requests      RequestStats          `json:"requests"`
	Indexes       map[string]IndexStats `json:"indexes"`
	QueryCache    *QueryCacheStats      `json:"query_cache,omitempty"`
}

// RequestStats are the coordinator's cumulative request counters.
type RequestStats struct {
	Search uint64 `json:"search"`
	Add    uint64 `json:"add"`
	Errors uint64 `json:"errors"`
}

// IndexStats describes one served index. Error is set when the load
// read was partial (a node was unreachable): Docs then undercounts
// and must not be read as data loss.
type IndexStats struct {
	Nodes     int    `json:"nodes"`
	Docs      int    `json:"docs"`
	NodeLoads []int  `json:"node_loads"`
	Error     string `json:"error,omitempty"`
}

// QueryCacheStats are the engine's query-side cache counters.
type QueryCacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
}

func (co *Coordinator) statsHandler(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	resp := StatsResponse{
		UptimeSeconds: time.Since(co.start).Seconds(),
		Requests: RequestStats{
			Search: co.searches.Load(),
			Add:    co.adds.Load(),
			Errors: co.errs.Load(),
		},
		Indexes: make(map[string]IndexStats, len(co.indexes)),
	}
	names := make([]string, 0, len(co.indexes))
	for name := range co.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := co.indexes[name]
		loads, err := c.NodeLoadsContext(r.Context())
		docs := 0
		for _, l := range loads {
			docs += l
		}
		st := IndexStats{Nodes: c.Size(), Docs: docs, NodeLoads: loads}
		if err != nil {
			st.Error = err.Error()
		}
		resp.Indexes[name] = st
	}
	if co.cfg.Cache != nil {
		hits, misses := co.cfg.Cache.Counters()
		resp.QueryCache = &QueryCacheStats{Hits: hits, Misses: misses, Entries: co.cfg.Cache.Len()}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (co *Coordinator) healthz(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(co.indexes))
	for name := range co.indexes {
		names = append(names, name)
	}
	sort.Strings(names)
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "indexes": names})
}
