package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// streamLines posts an NDJSON body to /add/stream and decodes the
// response lines: per-line records first, the summary last.
func streamLines(t *testing.T, h http.Handler, body string) ([]StreamResultLine, StreamSummaryLine) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, "/add/stream", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/x-ndjson")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var recs []StreamResultLine
	var sum StreamSummaryLine
	sawSummary := false
	sc := bufio.NewScanner(w.Body)
	for sc.Scan() {
		if sawSummary {
			t.Fatalf("output after the summary line: %s", sc.Text())
		}
		var probe struct {
			Summary bool `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if probe.Summary {
			if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
				t.Fatal(err)
			}
			sawSummary = true
			continue
		}
		var rec StreamResultLine
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	if !sawSummary {
		t.Fatal("no summary line")
	}
	return recs, sum
}

// TestAddStreamOutcomes: semantic per-line errors are reported and the
// stream continues; searchable content lands in the cluster.
func TestAddStreamOutcomes(t *testing.T) {
	co, h := testCoordinator(t, nil)
	body := `{"index":"articles","text":"federer wins the final"}
{"index":"nope","text":"lost"}
{"index":"articles"}

{"index":"articles","text":"rally at the net"}
`
	recs, sum := streamLines(t, h, body)
	if sum.Lines != 4 || sum.Committed != 2 || sum.Errors != 2 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	byLine := map[int]StreamResultLine{}
	for _, r := range recs {
		byLine[r.Line] = r
	}
	if r := byLine[2]; r.Error != "unknown index: nope" {
		t.Fatalf("line 2 = %+v", r)
	}
	if r := byLine[3]; r.Error != "missing text" {
		t.Fatalf("line 3 = %+v", r)
	}
	// The blank separator keeps its line number: the last document is
	// on file line 5, and the summary counts 4 processed lines.
	for _, line := range []int{1, 5} {
		r := byLine[line]
		if r.Error != "" || r.Committed == 0 || r.Doc == 0 {
			t.Fatalf("line %d = %+v", line, r)
		}
	}
	// The committed documents are searchable.
	w := postJSON(t, h, "/search", `{"index":"articles","query":"federer","n":5}`)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"results"`) {
		t.Fatalf("search after stream = %d: %s", w.Code, w.Body)
	}
	_ = co
}

// TestAddStreamStopsOnMalformedLine: broken framing reports the line
// and stops — later lines are never applied.
func TestAddStreamStopsOnMalformedLine(t *testing.T) {
	_, h := testCoordinator(t, nil)
	body := `{"index":"articles","text":"good line"}
{"index":"articles", busted
{"index":"articles","text":"never reached"}
`
	recs, sum := streamLines(t, h, body)
	if sum.Lines != 2 || sum.Committed != 1 || sum.Errors != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	found := false
	for _, r := range recs {
		if r.Line == 2 {
			found = true
			if !strings.HasPrefix(r.Error, "malformed JSON: ") {
				t.Fatalf("line 2 error = %q", r.Error)
			}
		}
		if r.Line > 2 {
			t.Fatalf("line after the malformed one was processed: %+v", r)
		}
	}
	if !found {
		t.Fatal("no record for the malformed line")
	}
}

// TestAddStreamExplicitOids: lines may pin their own document oids,
// like /add does.
func TestAddStreamExplicitOids(t *testing.T) {
	_, h := testCoordinator(t, nil)
	recs, sum := streamLines(t, h,
		`{"index":"articles","doc":100,"url":"u100","text":"pinned oid"}`+"\n")
	if sum.Committed != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(recs) != 1 || recs[0].Doc != 100 {
		t.Fatalf("recs = %+v", recs)
	}
}

// TestAddStreamDuplicateOidInWindow: two lines carrying the same oid
// inside one flush window each keep their own outcome record — the
// pending batch is flushed at the repeat instead of letting the two
// lines collide in the flush's oid→line correlation.
func TestAddStreamDuplicateOidInWindow(t *testing.T) {
	_, h := testCoordinator(t, nil)
	body := `{"index":"articles","doc":7,"url":"a","text":"first version"}
{"index":"articles","doc":7,"url":"b","text":"second version"}
`
	recs, sum := streamLines(t, h, body)
	if sum.Committed != 2 || sum.Errors != 0 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if len(recs) != 2 {
		t.Fatalf("recs = %+v, want one record per line", recs)
	}
	for i, r := range recs {
		if r.Line != i+1 || r.Doc != 7 || r.Committed == 0 || r.Error != "" {
			t.Fatalf("rec %d = %+v", i, r)
		}
	}
}

// TestAddStreamEngineLinesRequireEngine: webspace and owner lines on a
// coordinator without an engine fail per line, not per request.
func TestAddStreamEngineLinesRequireEngine(t *testing.T) {
	_, h := testCoordinator(t, nil)
	body := `{"webspace":{"URL":"u","Objects":[{"Class":"Player","ID":"p1"}]}}
{"index":"articles","owner":"Player:p1","text":"x"}
`
	recs, sum := streamLines(t, h, body)
	if sum.Errors != 2 || sum.Committed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	for _, r := range recs {
		if r.Error != "no conceptual engine configured" {
			t.Fatalf("rec = %+v", r)
		}
	}
}

// TestAddBatchMalformedDocIndex is the error-reporting satellite: a
// decode failure inside the docs array names the offending element.
func TestAddBatchMalformedDocIndex(t *testing.T) {
	_, h := testCoordinator(t, nil)
	w := postJSON(t, h, "/add/batch",
		`{"index":"articles","docs":[{"text":"fine"},{"text":42},{"text":"never"}]}`)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("status = %d: %s", w.Code, w.Body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(e.Error, "malformed JSON in docs[1]: ") {
		t.Fatalf("error = %q, want docs[1] named", e.Error)
	}
	// The whole-body contract is unchanged.
	if w := postJSON(t, h, "/add/batch", `{"docs": 7}`); w.Code != http.StatusBadRequest {
		t.Fatalf("docs-not-array = %d: %s", w.Code, w.Body)
	}
	if w := postJSON(t, h, "/add/batch", `{"index":"articles","docs":[{"text":"a"}]} extra`); w.Code != http.StatusBadRequest ||
		!strings.Contains(w.Body.String(), "trailing data") {
		t.Fatalf("trailing data = %d: %s", w.Code, w.Body)
	}
}
