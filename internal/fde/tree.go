package fde

import (
	"fmt"
	"strings"

	"dlsearch/internal/bat"
	"dlsearch/internal/fg"
	"dlsearch/internal/monetxml"
)

// NodeKind classifies parse-tree nodes by their grammar symbol type.
type NodeKind int

// Node kinds.
const (
	KindVariable NodeKind = iota
	KindDetector
	KindAtom
	KindLiteral
	KindRef
)

// PNode is a parse-tree node. Atom and value-detector nodes carry a
// Value; reference nodes carry the referenced object's token value
// (typically a URL) in Value.
type PNode struct {
	Symbol   string
	Kind     NodeKind
	Value    string
	Parent   *PNode
	Children []*PNode
}

// Tree is a parse tree together with its document order, which the
// engine maintains during parsing so that detector parameter paths can
// be resolved against "preceding symbols".
type Tree struct {
	Grammar *fg.Grammar
	Root    *PNode
	order   []*PNode
}

// newNode creates a node, appends it to the document order and
// attaches it to parent (if any).
func (t *Tree) newNode(parent *PNode, sym string, kind NodeKind) *PNode {
	n := &PNode{Symbol: sym, Kind: kind, Parent: parent}
	t.order = append(t.order, n)
	if parent != nil {
		parent.Children = append(parent.Children, n)
	}
	return n
}

// Order returns the nodes in document order.
func (t *Tree) Order() []*PNode { return t.order }

// NodesBySymbol returns all nodes with the given symbol in document
// order.
func (t *Tree) NodesBySymbol(sym string) []*PNode {
	var out []*PNode
	for _, n := range t.order {
		if n.Symbol == sym {
			out = append(out, n)
		}
	}
	return out
}

// RebuildOrder recomputes the document order from the tree structure;
// the FDS calls this after subtree surgery.
func (t *Tree) RebuildOrder() {
	t.order = t.order[:0]
	var walk func(*PNode)
	walk = func(n *PNode) {
		t.order = append(t.order, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	if t.Root != nil {
		walk(t.Root)
	}
}

// NodeValue returns the scalar value a path resolution yields for a
// node: its own value if set, otherwise the value of its first
// value-carrying descendant.
func NodeValue(n *PNode) (string, bool) {
	if n.Value != "" {
		return n.Value, true
	}
	for _, c := range n.Children {
		if v, ok := NodeValue(c); ok {
			return v, true
		}
	}
	return "", false
}

// Resolve evaluates a dotted path against the tree: the anchor is the
// latest node in document order whose symbol equals the first
// component (paths can only refer to preceding symbols — the limited
// context sensitivity of feature grammars); the remaining components
// select descendants. If the latest anchor yields no match, earlier
// anchors are tried.
func (t *Tree) Resolve(path fg.Path) []*PNode {
	for i := len(t.order) - 1; i >= 0; i-- {
		if t.order[i].Symbol != path.Head() {
			continue
		}
		nodes := []*PNode{t.order[i]}
		for _, comp := range path[1:] {
			nodes = descendantsNamed(nodes, comp)
			if len(nodes) == 0 {
				break
			}
		}
		if len(nodes) > 0 {
			return nodes
		}
	}
	return nil
}

// ResolveWithin evaluates a path relative to an anchor node: the first
// component selects descendants of the anchor (or the anchor itself).
func ResolveWithin(anchor *PNode, path fg.Path) []*PNode {
	var nodes []*PNode
	if anchor.Symbol == path.Head() {
		nodes = []*PNode{anchor}
	} else {
		nodes = descendantsNamed([]*PNode{anchor}, path.Head())
	}
	for _, comp := range path[1:] {
		nodes = descendantsNamed(nodes, comp)
		if len(nodes) == 0 {
			return nil
		}
	}
	return nodes
}

// descendantsNamed collects, in document order, all descendants of the
// given nodes whose symbol equals name.
func descendantsNamed(nodes []*PNode, name string) []*PNode {
	var out []*PNode
	var walk func(*PNode)
	walk = func(n *PNode) {
		for _, c := range n.Children {
			if c.Symbol == name {
				out = append(out, c)
			}
			walk(c)
		}
	}
	for _, n := range nodes {
		walk(n)
	}
	return out
}

// XML dumps the parse tree as an XML document (the paper: "the parse
// tree can be dumped as an XML-document"), ready for the physical
// level. Atom and value-detector nodes become elements with character
// data; literal nodes become character data in their parent; reference
// nodes become empty elements with a ref attribute.
func (t *Tree) XML() *monetxml.Node {
	if t.Root == nil {
		return nil
	}
	return nodeXML(t.Root)
}

func nodeXML(n *PNode) *monetxml.Node {
	switch n.Kind {
	case KindAtom:
		return monetxml.Elem(n.Symbol, monetxml.TextNode(n.Value))
	case KindRef:
		e := monetxml.Elem(n.Symbol)
		e.WithAttr("ref", n.Value)
		return e
	default:
		e := monetxml.Elem(n.Symbol)
		if n.Value != "" && len(n.Children) == 0 {
			e.Children = append(e.Children, monetxml.TextNode(n.Value))
		}
		for _, c := range n.Children {
			if c.Kind == KindLiteral {
				e.Children = append(e.Children, monetxml.TextNode(c.Value))
				continue
			}
			e.Children = append(e.Children, nodeXML(c))
		}
		return e
	}
}

// TypeOracle derives a monetxml type oracle from the grammar's atom
// ADT declarations, so parse-tree atoms land in typed relations (flt,
// int, bit) the query engine can range-scan.
func TypeOracle(g *fg.Grammar) monetxml.TypeOracle {
	return func(elemPath string) (bat.Kind, bool) {
		i := strings.LastIndexByte(elemPath, '/')
		leaf := elemPath[i+1:]
		a, ok := g.Atoms[leaf]
		if !ok {
			return 0, false
		}
		switch a.Type {
		case "flt":
			return bat.KindFloat, true
		case "int":
			return bat.KindInt, true
		case "bit":
			return bat.KindBool, true
		default:
			return 0, false
		}
	}
}

// String renders the tree compactly for debugging and tests.
func (t *Tree) String() string {
	var sb strings.Builder
	var walk func(n *PNode, depth int)
	walk = func(n *PNode, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(n.Symbol)
		if n.Value != "" {
			fmt.Fprintf(&sb, "=%q", n.Value)
		}
		sb.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	if t.Root != nil {
		walk(t.Root, 0)
	}
	return sb.String()
}
