package fde

import (
	"fmt"
	"strconv"

	"dlsearch/internal/detector"
	"dlsearch/internal/fg"
)

// maxDepth bounds recursion so pathological (e.g. left-recursive)
// grammars fail with a diagnostic instead of exhausting the stack.
const maxDepth = 512

// Stats records engine cost metrics; experiment E13 reads
// StackVersions (each is O(1) thanks to suffix sharing).
type Stats struct {
	DetectorCalls  map[string]int
	TokensPushed   int
	TokensConsumed int
	Backtracks     int
	StackVersions  int
}

// Engine is a Feature Detector Engine instance for one grammar and one
// detector registry.
type Engine struct {
	G     *fg.Grammar
	Reg   *detector.Registry
	Stats Stats

	inited map[string]bool
	err    error // hard error (missing implementation, hook failure)
}

// New returns an engine for the grammar with the given registry.
func New(g *fg.Grammar, reg *detector.Registry) *Engine {
	return &Engine{G: g, Reg: reg, Stats: Stats{DetectorCalls: map[string]int{}}}
}

// Parse proves that the multimedia object described by the initial
// token set (the %start arguments, e.g. its location) is a member of
// the grammar's language, executing detectors on the way, and returns
// the resulting parse tree.
func (e *Engine) Parse(initial []detector.Token) (*Tree, error) {
	e.err = nil
	e.inited = map[string]bool{}
	t := &Tree{Grammar: e.G}
	st := NewStack(initial)
	e.Stats.TokensPushed += len(initial)
	node, rest, ok := e.parseSymbol(t, nil, e.G.Start, st, 0)
	e.runFinals()
	if e.err != nil {
		return nil, e.err
	}
	if !ok {
		return nil, fmt.Errorf("fde: %s is not in the language of the grammar", e.G.Start)
	}
	if !rest.Empty() {
		top, _ := rest.Peek()
		return nil, fmt.Errorf("fde: %d unconsumed tokens (next: %s=%q)", rest.Len(), top.Symbol, top.Value)
	}
	t.Root = node
	return t, nil
}

func (e *Engine) runFinals() {
	for name := range e.inited {
		impl, ok := e.Reg.Lookup(name)
		if !ok || impl.Hooks.Final == nil {
			continue
		}
		if err := impl.Hooks.Final(); err != nil && e.err == nil {
			e.err = fmt.Errorf("fde: final detector %s: %w", name, err)
		}
	}
}

// parseSymbol parses one occurrence of sym. On failure the tree is
// restored to its prior state; the token stack needs no restoration
// because versions are immutable.
func (e *Engine) parseSymbol(t *Tree, parent *PNode, sym string, st Stack, depth int) (*PNode, Stack, bool) {
	if e.err != nil {
		return nil, st, false
	}
	if depth > maxDepth {
		e.err = fmt.Errorf("fde: recursion limit exceeded at symbol %s (left recursion?)", sym)
		return nil, st, false
	}
	saveOrder := len(t.order)
	saveChildren := -1
	if parent != nil {
		saveChildren = len(parent.Children)
	}
	restore := func() {
		t.order = t.order[:saveOrder]
		if parent != nil {
			parent.Children = parent.Children[:saveChildren]
		}
	}
	switch {
	case e.G.IsDetector(sym):
		n, rest, ok := e.parseDetector(t, parent, sym, st, depth)
		if !ok {
			restore()
			return nil, st, false
		}
		return n, rest, true
	case e.G.IsAtom(sym):
		tok, rest, ok := st.Pop()
		if !ok || tok.Symbol != sym {
			return nil, st, false
		}
		n := t.newNode(parent, sym, KindAtom)
		n.Value = tok.Value
		e.Stats.TokensConsumed++
		return n, rest, true
	default:
		n := t.newNode(parent, sym, KindVariable)
		rest, ok := e.parseAlternatives(t, n, sym, st, depth)
		if !ok {
			restore()
			return nil, st, false
		}
		return n, rest, true
	}
}

// parseDetector handles both detector flavours. Whitebox predicates
// consume no tokens: value detectors (atom-typed, like netplay) always
// succeed and store the truth value, plain predicates (video_type)
// gate their alternative. Blackbox detectors resolve their input
// paths, invoke the implementation, push the produced tokens and
// validate them against their output rules.
func (e *Engine) parseDetector(t *Tree, parent *PNode, sym string, st Stack, depth int) (*PNode, Stack, bool) {
	d := e.G.Detectors[sym]
	if d.Kind == fg.Whitebox {
		e.Stats.DetectorCalls[sym]++
		val := e.evalExpr(t, nil, d.Pred)
		if e.G.IsAtom(sym) {
			n := t.newNode(parent, sym, KindDetector)
			n.Value = strconv.FormatBool(val)
			return n, st, true
		}
		if !val {
			return nil, st, false
		}
		n := t.newNode(parent, sym, KindDetector)
		return n, st, true
	}

	impl, ok := e.Reg.Lookup(sym)
	if !ok {
		e.err = fmt.Errorf("fde: no implementation registered for blackbox detector %s", sym)
		return nil, st, false
	}
	if !e.inited[sym] {
		e.inited[sym] = true
		if impl.Hooks.Init != nil {
			if err := impl.Hooks.Init(); err != nil {
				e.err = fmt.Errorf("fde: init detector %s: %w", sym, err)
				return nil, st, false
			}
		}
	}
	if impl.Hooks.Begin != nil {
		if err := impl.Hooks.Begin(); err != nil {
			return nil, st, false
		}
	}
	ctx, ok := e.resolveParams(t, d)
	if !ok {
		return nil, st, false
	}
	e.Stats.DetectorCalls[sym]++
	toks, err := impl.Call(ctx)
	if err != nil {
		return nil, st, false // detector failure invalidates the alternative
	}
	n := t.newNode(parent, sym, KindDetector)
	st = st.Push(toks)
	e.Stats.TokensPushed += len(toks)

	var rest Stack
	if e.G.IsAtom(sym) && len(e.G.Alternatives(sym)) == 0 {
		// Value detector: its single output token is its own value.
		tok, r2, popped := st.Pop()
		if !popped || tok.Symbol != sym {
			return nil, st, false
		}
		e.Stats.TokensConsumed++
		n.Value = tok.Value
		rest = r2
	} else {
		r2, parsed := e.parseAlternatives(t, n, sym, st, depth)
		if !parsed {
			return nil, st, false
		}
		rest = r2
	}
	if impl.Hooks.End != nil {
		if err := impl.Hooks.End(); err != nil {
			return nil, st, false
		}
	}
	return n, rest, true
}

// resolveParams evaluates the detector's input paths against the
// preceding parse tree.
func (e *Engine) resolveParams(t *Tree, d *fg.Detector) (*detector.Context, bool) {
	ctx := &detector.Context{}
	for _, p := range d.Params {
		nodes := t.Resolve(p)
		if len(nodes) == 0 {
			return nil, false
		}
		v, ok := NodeValue(nodes[0])
		if !ok {
			return nil, false
		}
		ctx.Params = append(ctx.Params, v)
		ctx.Paths = append(ctx.Paths, p.String())
	}
	return ctx, true
}

// parseAlternatives tries each production alternative for sym in
// declaration order, backtracking on failure. Saving a token-stack
// version is O(1): alternatives share the stack suffix.
func (e *Engine) parseAlternatives(t *Tree, node *PNode, sym string, st Stack, depth int) (Stack, bool) {
	alts := e.G.Alternatives(sym)
	if len(alts) == 0 {
		return st, true
	}
	for _, alt := range alts {
		saveOrder := len(t.order)
		saveChildren := len(node.Children)
		e.Stats.StackVersions++
		rest, ok := e.parseSeq(t, node, alt.RHS, st, depth)
		if ok {
			return rest, true
		}
		e.Stats.Backtracks++
		t.order = t.order[:saveOrder]
		node.Children = node.Children[:saveChildren]
		if e.err != nil {
			return st, false
		}
	}
	return st, false
}

func (e *Engine) parseSeq(t *Tree, parent *PNode, els []fg.Element, st Stack, depth int) (Stack, bool) {
	for _, el := range els {
		rest, ok := e.parseRepeat(t, parent, el, st, depth)
		if !ok {
			return st, false
		}
		st = rest
	}
	return st, true
}

// parseRepeat greedily matches an element within its repetition bounds.
func (e *Engine) parseRepeat(t *Tree, parent *PNode, el fg.Element, st Stack, depth int) (Stack, bool) {
	count := 0
	for el.Max == fg.Unbounded || count < el.Max {
		saveOrder := len(t.order)
		saveChildren := len(parent.Children)
		e.Stats.StackVersions++
		rest, ok := e.parseOnce(t, parent, el, st, depth)
		if !ok {
			t.order = t.order[:saveOrder]
			parent.Children = parent.Children[:saveChildren]
			break
		}
		st = rest
		count++
		if e.err != nil {
			return st, false
		}
	}
	if count < el.Min {
		return st, false
	}
	return st, true
}

func (e *Engine) parseOnce(t *Tree, parent *PNode, el fg.Element, st Stack, depth int) (Stack, bool) {
	switch el.Kind {
	case fg.ElemSymbol:
		_, rest, ok := e.parseSymbol(t, parent, el.Name, st, depth+1)
		return rest, ok
	case fg.ElemLiteral:
		tok, rest, ok := st.Pop()
		if !ok || tok.Value != el.Name {
			return st, false
		}
		n := t.newNode(parent, el.Name, KindLiteral)
		n.Value = el.Name
		e.Stats.TokensConsumed++
		return rest, true
	case fg.ElemRef:
		// A reference consumes a token carrying the referenced symbol
		// and records a graph edge instead of recursing — this is how
		// Figure 14 models the web's link structure without infinite
		// descent.
		tok, rest, ok := st.Pop()
		if !ok || tok.Symbol != el.Name {
			return st, false
		}
		n := t.newNode(parent, el.Name, KindRef)
		n.Value = tok.Value
		e.Stats.TokensConsumed++
		return rest, true
	case fg.ElemGroup:
		return e.parseSeq(t, parent, el.Children, st, depth+1)
	default:
		return st, false
	}
}

// --- Whitebox predicate evaluation ---

// evalExpr evaluates a whitebox predicate; anchor, when non-nil,
// scopes path resolution to a quantifier binding.
func (e *Engine) evalExpr(t *Tree, anchor *PNode, x fg.Expr) bool {
	switch v := x.(type) {
	case *fg.Cmp:
		l, lok := e.operandValue(t, anchor, v.Left)
		r, rok := e.operandValue(t, anchor, v.Right)
		if !lok || !rok {
			return false
		}
		return compare(v.Op, l, r)
	case *fg.PathTruth:
		nodes := e.resolveExprPath(t, anchor, v.Path)
		if len(nodes) == 0 {
			return false
		}
		val, _ := NodeValue(nodes[0])
		return val == "true"
	case *fg.And:
		return e.evalExpr(t, anchor, v.L) && e.evalExpr(t, anchor, v.R)
	case *fg.Or:
		return e.evalExpr(t, anchor, v.L) || e.evalExpr(t, anchor, v.R)
	case *fg.Not:
		return !e.evalExpr(t, anchor, v.E)
	case *fg.Quant:
		nodes := e.resolveExprPath(t, anchor, v.Over)
		matches := 0
		for _, n := range nodes {
			if e.evalExpr(t, n, v.Body) {
				matches++
			}
		}
		switch v.Kind {
		case fg.QuantSome:
			return matches >= 1
		case fg.QuantAll:
			return matches == len(nodes) // vacuously true on empty
		case fg.QuantOne:
			return matches == 1
		}
	}
	return false
}

// resolveExprPath resolves a path within the quantifier anchor first,
// falling back to global (preceding-symbol) resolution.
func (e *Engine) resolveExprPath(t *Tree, anchor *PNode, p fg.Path) []*PNode {
	if anchor != nil {
		if nodes := ResolveWithin(anchor, p); len(nodes) > 0 {
			return nodes
		}
	}
	return t.Resolve(p)
}

func (e *Engine) operandValue(t *Tree, anchor *PNode, o fg.Operand) (string, bool) {
	switch {
	case o.IsNum:
		return strconv.FormatFloat(o.Value(), 'g', -1, 64), true
	case o.IsStr:
		return o.Str, true
	default:
		nodes := e.resolveExprPath(t, anchor, o.Path)
		if len(nodes) == 0 {
			return "", false
		}
		return NodeValue(nodes[0])
	}
}

// compare applies an operator, numerically when both operands parse as
// numbers and lexicographically otherwise.
func compare(op fg.CmpOp, l, r string) bool {
	lf, lerr := strconv.ParseFloat(l, 64)
	rf, rerr := strconv.ParseFloat(r, 64)
	if lerr == nil && rerr == nil {
		switch op {
		case fg.OpEq:
			return lf == rf
		case fg.OpNe:
			return lf != rf
		case fg.OpLt:
			return lf < rf
		case fg.OpLe:
			return lf <= rf
		case fg.OpGt:
			return lf > rf
		case fg.OpGe:
			return lf >= rf
		}
	}
	switch op {
	case fg.OpEq:
		return l == r
	case fg.OpNe:
		return l != r
	case fg.OpLt:
		return l < r
	case fg.OpLe:
		return l <= r
	case fg.OpGt:
		return l > r
	case fg.OpGe:
		return l >= r
	}
	return false
}

// ReparseDetector re-executes the detector at node within the existing
// tree, replacing the node's subtree: the incremental parse the FDS
// schedules after a detector upgrade. It reports whether the subtree's
// content changed. Path resolution sees only nodes preceding the
// detector, exactly as during the original parse.
func (e *Engine) ReparseDetector(t *Tree, node *PNode) (bool, error) {
	if e.err != nil {
		return false, e.err
	}
	if node.Kind != KindDetector {
		return false, fmt.Errorf("fde: node %s is not a detector instance", node.Symbol)
	}
	d, ok := e.G.Detectors[node.Symbol]
	if !ok {
		return false, fmt.Errorf("fde: %s is not a detector", node.Symbol)
	}
	before := snapshot(node)
	oldChildren := node.Children
	oldValue := node.Value
	node.Children = nil
	t.RebuildOrder()

	// Scope resolution to the prefix ending at this node.
	idx := -1
	for i, n := range t.order {
		if n == node {
			idx = i
			break
		}
	}
	if idx < 0 {
		node.Children = oldChildren
		t.RebuildOrder()
		return false, fmt.Errorf("fde: node %s not in tree", node.Symbol)
	}
	// Copy the prefix so appends during re-parsing cannot clobber the
	// suffix of t.order that RebuildOrder will restore afterwards.
	scoped := &Tree{Grammar: t.Grammar, Root: t.Root, order: append([]*PNode(nil), t.order[:idx+1]...)}

	fail := func(err error) (bool, error) {
		node.Children = oldChildren
		node.Value = oldValue
		t.RebuildOrder()
		return false, err
	}

	if d.Kind == fg.Whitebox {
		e.inited = map[string]bool{}
		e.Stats.DetectorCalls[d.Name]++
		val := e.evalExpr(scoped, nil, d.Pred)
		if e.G.IsAtom(d.Name) {
			node.Value = strconv.FormatBool(val)
		} else if !val {
			return fail(fmt.Errorf("fde: whitebox detector %s no longer holds", d.Name))
		}
		t.RebuildOrder()
		return snapshot(node) != before, nil
	}

	impl, found := e.Reg.Lookup(d.Name)
	if !found {
		return fail(fmt.Errorf("fde: no implementation for %s", d.Name))
	}
	e.inited = map[string]bool{}
	ctx, ok := e.resolveParamsScoped(scoped, d)
	if !ok {
		return fail(fmt.Errorf("fde: cannot resolve parameters of %s", d.Name))
	}
	e.Stats.DetectorCalls[d.Name]++
	toks, err := impl.Call(ctx)
	if err != nil {
		return fail(fmt.Errorf("fde: detector %s: %w", d.Name, err))
	}
	st := NewStack(toks)
	e.Stats.TokensPushed += len(toks)
	if e.G.IsAtom(d.Name) && len(e.G.Alternatives(d.Name)) == 0 {
		tok, rest, popped := st.Pop()
		if !popped || tok.Symbol != d.Name || !rest.Empty() {
			return fail(fmt.Errorf("fde: value detector %s produced unexpected tokens", d.Name))
		}
		node.Value = tok.Value
	} else {
		rest, parsed := e.parseAlternatives(scoped, node, d.Name, st, 0)
		if !parsed || !rest.Empty() {
			return fail(fmt.Errorf("fde: output of %s does not match its rules", d.Name))
		}
	}
	t.RebuildOrder()
	return snapshot(node) != before, nil
}

func (e *Engine) resolveParamsScoped(t *Tree, d *fg.Detector) (*detector.Context, bool) {
	return e.resolveParams(t, d)
}

// snapshot serialises a subtree for change detection.
func snapshot(n *PNode) string { return nodeXML(n).String() }
