package fde

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"dlsearch/internal/detector"
	"dlsearch/internal/fg"
)

// testShot is ground truth for the fake segment/tennis detectors.
type testShot struct {
	begin, end int
	kind       string
	yPos       []float64 // per frame, for tennis shots
}

var testShots = []testShot{
	{0, 99, "tennis", []float64{200.0, 150.0}}, // net approach in frame 2
	{100, 149, "closeup", nil},
	{150, 299, "tennis", []float64{210.0, 205.0}}, // baseline rally
	{300, 349, "audience", nil},
	{350, 399, "other", nil},
}

// tennisRegistry wires fake header/segment/tennis implementations; the
// external detectors go through the XML-RPC loopback, exactly as the
// paper's xml-rpc:: prefix prescribes.
func tennisRegistry(t *testing.T) (*detector.Registry, *hookCounter) {
	t.Helper()
	hooks := &hookCounter{}
	reg := detector.NewRegistry()
	reg.Register(&detector.Impl{
		Name:    "header",
		Version: detector.Version{Major: 1},
		Fn: func(ctx *detector.Context) ([]detector.Token, error) {
			loc := ctx.Param(0)
			switch {
			case strings.HasSuffix(loc, ".mpg"):
				return []detector.Token{{Symbol: "primary", Value: "video"}, {Symbol: "secondary", Value: "mpeg"}}, nil
			case strings.HasSuffix(loc, ".html"):
				return []detector.Token{{Symbol: "primary", Value: "text"}, {Symbol: "secondary", Value: "html"}}, nil
			default:
				return nil, fmt.Errorf("unknown MIME type for %s", loc)
			}
		},
		Hooks: detector.Hooks{
			Init:  func() error { hooks.inits++; return nil },
			Final: func() error { hooks.finals++; return nil },
		},
	})

	srv := detector.NewXMLRPCServer()
	srv.Register("segment", func(ctx *detector.Context) ([]detector.Token, error) {
		var toks []detector.Token
		for _, s := range testShots {
			toks = append(toks,
				detector.Token{Symbol: "frameNo", Value: fmt.Sprint(s.begin)},
				detector.Token{Symbol: "frameNo", Value: fmt.Sprint(s.end)},
				detector.Token{Value: s.kind},
			)
		}
		return toks, nil
	})
	srv.Register("tennis", func(ctx *detector.Context) ([]detector.Token, error) {
		begin := ctx.Param(1)
		for _, s := range testShots {
			if fmt.Sprint(s.begin) != begin {
				continue
			}
			var toks []detector.Token
			for i, y := range s.yPos {
				toks = append(toks,
					detector.Token{Symbol: "frameNo", Value: fmt.Sprint(s.begin + i)},
					detector.Token{Symbol: "xPos", Value: "320.0"},
					detector.Token{Symbol: "yPos", Value: fmt.Sprint(y)},
					detector.Token{Symbol: "Area", Value: "450"},
					detector.Token{Symbol: "Ecc", Value: "1.8"},
					detector.Token{Symbol: "Orient", Value: "0.4"},
				)
			}
			return toks, nil
		}
		return nil, fmt.Errorf("no shot starting at %s", begin)
	})
	client := detector.NewLoopback(srv)
	reg.Register(&detector.Impl{Name: "segment", Version: detector.Version{Major: 1}, Transport: client})
	reg.Register(&detector.Impl{Name: "tennis", Version: detector.Version{Major: 1}, Transport: client})
	return reg, hooks
}

type hookCounter struct{ inits, finals int }

func locationToken(url string) []detector.Token {
	return []detector.Token{{Symbol: "location", Value: url}}
}

// TestTennisPipeline is experiment E03: the FDE drives the Figure 6+7
// grammar over a (synthetic) tennis video, calling the external
// detectors through XML-RPC, classifying shots and deriving the
// netplay event with the quantified whitebox detector.
func TestTennisPipeline(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	reg, hooks := tennisRegistry(t)
	e := New(g, reg)
	tree, err := e.Parse(locationToken("http://ausopen.org/video/match.mpg"))
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	if tree.Root.Symbol != "MMO" {
		t.Fatalf("root = %s", tree.Root.Symbol)
	}
	// MIME typing.
	prim := tree.NodesBySymbol("primary")
	if len(prim) != 1 || prim[0].Value != "video" {
		t.Fatalf("primary = %v", prim)
	}
	// Five shots.
	shots := tree.NodesBySymbol("shot")
	if len(shots) != len(testShots) {
		t.Fatalf("shots = %d, want %d", len(shots), len(testShots))
	}
	// Two tennis shots with events; netplay true only for the first.
	nps := tree.NodesBySymbol("netplay")
	if len(nps) != 2 {
		t.Fatalf("netplay nodes = %d, want 2", len(nps))
	}
	if nps[0].Value != "true" {
		t.Fatalf("first shot netplay = %q, want true (yPos 150 <= 170)", nps[0].Value)
	}
	if nps[1].Value != "false" {
		t.Fatalf("second tennis shot netplay = %q, want false", nps[1].Value)
	}
	// Frames carry the full shape feature set.
	players := tree.NodesBySymbol("player")
	if len(players) != 4 {
		t.Fatalf("players = %d", len(players))
	}
	for _, p := range players {
		if len(p.Children) != 5 {
			t.Fatalf("player features = %d, want 5", len(p.Children))
		}
	}
	// Hooks ran.
	if hooks.inits != 1 || hooks.finals != 1 {
		t.Fatalf("header init/final = %d/%d", hooks.inits, hooks.finals)
	}
	// Detector call accounting: tennis ran once per tennis shot.
	if e.Stats.DetectorCalls["tennis"] != 2 {
		t.Fatalf("tennis calls = %d", e.Stats.DetectorCalls["tennis"])
	}
	if e.Stats.DetectorCalls["segment"] != 1 {
		t.Fatalf("segment calls = %d", e.Stats.DetectorCalls["segment"])
	}
	// Backtracking happened (literal-guarded alternatives).
	if e.Stats.Backtracks == 0 {
		t.Fatal("expected backtracks over type alternatives")
	}
}

func TestNonVideoSkipsMMType(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	reg, _ := tennisRegistry(t)
	e := New(g, reg)
	tree, err := e.Parse(locationToken("http://ausopen.org/page.html"))
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	// video_type whitebox gate fails for text/html: mm_type absent.
	if got := tree.NodesBySymbol("mm_type"); len(got) != 0 {
		t.Fatalf("mm_type = %v for a text page", got)
	}
	if got := tree.NodesBySymbol("primary"); len(got) != 1 || got[0].Value != "text" {
		t.Fatalf("primary = %v", got)
	}
}

func TestDetectorErrorFailsParse(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	reg, _ := tennisRegistry(t)
	e := New(g, reg)
	// The header fake errors on unknown extensions, and header is
	// obligatory in MMO: the whole parse fails.
	if _, err := e.Parse(locationToken("http://ausopen.org/object.weird")); err == nil {
		t.Fatal("expected parse failure")
	}
}

func TestMissingImplementationIsHardError(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	e := New(g, detector.NewRegistry())
	_, err := e.Parse(locationToken("http://x.mpg"))
	if err == nil || !strings.Contains(err.Error(), "no implementation") {
		t.Fatalf("err = %v", err)
	}
}

func TestInitFailureAborts(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	reg, _ := tennisRegistry(t)
	impl, _ := reg.Lookup("header")
	impl.Hooks.Init = func() error { return errors.New("lib init failed") }
	e := New(g, reg)
	if _, err := e.Parse(locationToken("http://x.mpg")); err == nil || !strings.Contains(err.Error(), "init detector") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnconsumedTokens(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	reg, _ := tennisRegistry(t)
	e := New(g, reg)
	extra := append(locationToken("http://x.html"), detector.Token{Symbol: "location", Value: "stray"})
	if _, err := e.Parse(extra); err == nil || !strings.Contains(err.Error(), "unconsumed") {
		t.Fatalf("err = %v", err)
	}
}

func TestXMLDump(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	reg, _ := tennisRegistry(t)
	e := New(g, reg)
	tree, err := e.Parse(locationToken("http://ausopen.org/video/match.mpg"))
	if err != nil {
		t.Fatal(err)
	}
	x := tree.XML()
	if x.Tag != "MMO" {
		t.Fatalf("XML root = %s", x.Tag)
	}
	s := x.String()
	for _, frag := range []string{
		"<location>http://ausopen.org/video/match.mpg</location>",
		"<primary>video</primary>",
		"<netplay>true</netplay>",
		"<yPos>150</yPos>",
		"<type>tennis<tennis>", // literal becomes character data
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("XML dump lacks %q", frag)
		}
	}
}

func TestTypeOracle(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	oracle := TypeOracle(g)
	if k, ok := oracle("MMO/mm_type/video/segment/shot/tennis/frame/player/yPos"); !ok || k.String() != "flt" {
		t.Fatalf("yPos oracle = %v,%v", k, ok)
	}
	if k, ok := oracle("a/b/frameNo"); !ok || k.String() != "int" {
		t.Fatalf("frameNo oracle = %v,%v", k, ok)
	}
	if k, ok := oracle("a/event/netplay"); !ok || k.String() != "bit" {
		t.Fatalf("netplay oracle = %v,%v", k, ok)
	}
	if _, ok := oracle("a/b/primary"); ok { // str atoms carry no typed relation
		t.Fatal("str atom must not be typed")
	}
	if _, ok := oracle("a/b/shot"); ok {
		t.Fatal("variable must not be typed")
	}
}

func TestInternetGrammarReferences(t *testing.T) {
	g := fg.MustParse(fg.InternetGrammar)
	reg := detector.NewRegistry()
	reg.RegisterFunc("fetch", func(ctx *detector.Context) ([]detector.Token, error) {
		return []detector.Token{
			{Symbol: "title", Value: "Champions page"},
			{Symbol: "word", Value: "champion"},
			{Symbol: "word", Value: "tennis"},
			{Symbol: "href", Value: "http://other.org/a"},
			{Symbol: "html", Value: "http://other.org/a"},
			{Symbol: "href", Value: "http://plain.org/b"},
			{Symbol: "location", Value: "http://img.org/seles.jpg"},
		}, nil
	})
	reg.RegisterFunc("portrait", func(ctx *detector.Context) ([]detector.Token, error) {
		return []detector.Token{{Symbol: "portrait", Value: "true"}}, nil
	})
	e := New(g, reg)
	tree, err := e.Parse(locationToken("http://me.org/index.html"))
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	// Two anchors: one with an &html reference, one without.
	anchors := tree.NodesBySymbol("anchor")
	if len(anchors) != 2 {
		t.Fatalf("anchors = %d", len(anchors))
	}
	refs := tree.NodesBySymbol("html")
	// root html node + 1 reference node
	var refNodes []*PNode
	for _, r := range refs {
		if r.Kind == KindRef {
			refNodes = append(refNodes, r)
		}
	}
	if len(refNodes) != 1 || refNodes[0].Value != "http://other.org/a" {
		t.Fatalf("reference nodes = %v", refNodes)
	}
	// Portrait detector is a blackbox value detector (atom-typed).
	ps := tree.NodesBySymbol("portrait")
	if len(ps) != 1 || ps[0].Value != "true" {
		t.Fatalf("portrait = %v", ps)
	}
	// XML dump renders references with a ref attribute.
	if s := tree.XML().String(); !strings.Contains(s, `<html ref="http://other.org/a"/>`) {
		t.Errorf("XML lacks reference: %s", s)
	}
}

func TestReparseDetectorChangesSubtree(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	reg, _ := tennisRegistry(t)
	e := New(g, reg)
	tree, err := e.Parse(locationToken("http://ausopen.org/video/match.mpg"))
	if err != nil {
		t.Fatal(err)
	}
	headerNode := tree.NodesBySymbol("header")[0]

	// Same implementation: reparse must report no change.
	changed, err := e.ReparseDetector(tree, headerNode)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("identical implementation reported a change")
	}

	// Upgraded implementation with different output.
	reg.Register(&detector.Impl{
		Name:    "header",
		Version: detector.Version{Major: 2},
		Fn: func(ctx *detector.Context) ([]detector.Token, error) {
			return []detector.Token{{Symbol: "primary", Value: "video"}, {Symbol: "secondary", Value: "quicktime"}}, nil
		},
	})
	changed, err = e.ReparseDetector(tree, headerNode)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("upgraded implementation reported no change")
	}
	if got := tree.NodesBySymbol("secondary")[0].Value; got != "quicktime" {
		t.Fatalf("secondary after reparse = %q", got)
	}
	// The rest of the tree is intact.
	if got := len(tree.NodesBySymbol("shot")); got != len(testShots) {
		t.Fatalf("shots after reparse = %d", got)
	}
}

func TestReparseWhiteboxValueDetector(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	reg, _ := tennisRegistry(t)
	e := New(g, reg)
	tree, err := e.Parse(locationToken("http://ausopen.org/video/match.mpg"))
	if err != nil {
		t.Fatal(err)
	}
	np := tree.NodesBySymbol("netplay")[0]
	if np.Value != "true" {
		t.Fatalf("precondition: netplay = %q", np.Value)
	}
	// Mutate the underlying yPos feature and re-run the whitebox.
	yp := tree.NodesBySymbol("yPos")
	for _, n := range yp[:2] { // frames of the first tennis shot
		n.Value = "300.0"
	}
	changed, err := e.ReparseDetector(tree, np)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || np.Value != "false" {
		t.Fatalf("netplay after feature change = %q (changed=%v)", np.Value, changed)
	}
}

func TestReparseErrors(t *testing.T) {
	g := fg.MustParse(fg.TennisGrammar)
	reg, _ := tennisRegistry(t)
	e := New(g, reg)
	tree, err := e.Parse(locationToken("http://ausopen.org/video/match.mpg"))
	if err != nil {
		t.Fatal(err)
	}
	// Not a detector.
	shot := tree.NodesBySymbol("shot")[0]
	if _, err := e.ReparseDetector(tree, shot); err == nil {
		t.Fatal("reparsing a variable should fail")
	}
	// Node not in tree.
	orphan := &PNode{Symbol: "header"}
	if _, err := e.ReparseDetector(tree, orphan); err == nil {
		t.Fatal("reparsing an orphan should fail")
	}
	// Failure restores the old subtree.
	headerNode := tree.NodesBySymbol("header")[0]
	reg.Register(&detector.Impl{
		Name:    "header",
		Version: detector.Version{Major: 3},
		Fn: func(ctx *detector.Context) ([]detector.Token, error) {
			return nil, errors.New("flaky")
		},
	})
	if _, err := e.ReparseDetector(tree, headerNode); err == nil {
		t.Fatal("failing detector should error")
	}
	if got := tree.NodesBySymbol("primary"); len(got) != 1 || got[0].Value != "video" {
		t.Fatalf("failed reparse did not restore subtree: %v", got)
	}
}

func TestLeftRecursionDiagnosed(t *testing.T) {
	g := fg.MustParse(`
%start s(a);
%atom str a;
s : s a;
`)
	e := New(g, detector.NewRegistry())
	_, err := e.Parse([]detector.Token{{Symbol: "a", Value: "x"}})
	if err == nil || !strings.Contains(err.Error(), "recursion") {
		t.Fatalf("err = %v", err)
	}
}

func TestQuantifierSemantics(t *testing.T) {
	mk := func(quant string) *Engine {
		g := fg.MustParse(fmt.Sprintf(`
%%start s(v);
%%atom flt v;
%%atom bit q;
%%detector q %s[s.v](v >= 10);
s : v v v q;
`, quant))
		return New(g, detector.NewRegistry())
	}
	toks := func(vals ...string) []detector.Token {
		var out []detector.Token
		for _, v := range vals {
			out = append(out, detector.Token{Symbol: "v", Value: v})
		}
		return out
	}
	cases := []struct {
		quant string
		vals  []string
		want  string
	}{
		{"some", []string{"1", "2", "30"}, "true"},
		{"some", []string{"1", "2", "3"}, "false"},
		{"all", []string{"10", "20", "30"}, "true"},
		{"all", []string{"10", "2", "30"}, "false"},
		{"one", []string{"10", "2", "3"}, "true"},
		{"one", []string{"10", "20", "3"}, "false"},
	}
	for _, c := range cases {
		e := mk(c.quant)
		tree, err := e.Parse(toks(c.vals...))
		if err != nil {
			t.Fatalf("%s %v: %v", c.quant, c.vals, err)
		}
		if got := tree.NodesBySymbol("q")[0].Value; got != c.want {
			t.Errorf("%s over %v = %s, want %s", c.quant, c.vals, got, c.want)
		}
	}
}

func TestGroupRepetition(t *testing.T) {
	g := fg.MustParse(`
%start s(a);
%atom str a, b;
s : (a b)+;
`)
	e := New(g, detector.NewRegistry())
	tree, err := e.Parse([]detector.Token{
		{Symbol: "a", Value: "1"}, {Symbol: "b", Value: "2"},
		{Symbol: "a", Value: "3"}, {Symbol: "b", Value: "4"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Root.Children); got != 4 {
		t.Fatalf("children = %d", got)
	}
	// Unbalanced input fails.
	if _, err := e.Parse([]detector.Token{{Symbol: "a", Value: "1"}}); err == nil {
		t.Fatal("half a group should fail")
	}
}
