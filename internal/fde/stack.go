// Package fde implements the Feature Detector Engine: the special
// recursive-descent parser, generated from a feature grammar, that
// proves a multimedia object to be a member of the grammar's language
// while executing the detectors it encounters on the way. Detector
// output tokens are pushed on the token stack, validated against the
// production rules and moved into the parse tree. To support
// backtracking the engine keeps several versions of the token stack;
// versions share their common suffix (as in Tomita's generalised
// parsing [Tom86]) so saving a version is O(1) instead of O(stack).
package fde

import "dlsearch/internal/detector"

// Stack is an immutable token stack. The zero value is the empty
// stack. Because cells are immutable, any number of stack versions can
// coexist while sharing their common suffix; saving a version is
// copying the struct (two words).
type Stack struct {
	top  *cell
	size int
}

type cell struct {
	tok  detector.Token
	next *cell
}

// NewStack builds a stack whose top is toks[0].
func NewStack(toks []detector.Token) Stack {
	s := Stack{}
	for i := len(toks) - 1; i >= 0; i-- {
		s = Stack{top: &cell{tok: toks[i], next: s.top}, size: s.size + 1}
	}
	return s
}

// Len returns the number of tokens on the stack.
func (s Stack) Len() int { return s.size }

// Empty reports whether the stack has no tokens.
func (s Stack) Empty() bool { return s.size == 0 }

// Peek returns the top token without consuming it.
func (s Stack) Peek() (detector.Token, bool) {
	if s.top == nil {
		return detector.Token{}, false
	}
	return s.top.tok, true
}

// Pop returns the top token and the stack without it.
func (s Stack) Pop() (detector.Token, Stack, bool) {
	if s.top == nil {
		return detector.Token{}, s, false
	}
	return s.top.tok, Stack{top: s.top.next, size: s.size - 1}, true
}

// Push returns the stack with toks prepended such that toks[0] becomes
// the new top: a detector emitting tokens [t1 t2 t3] wants the parser
// to consume t1 first.
func (s Stack) Push(toks []detector.Token) Stack {
	for i := len(toks) - 1; i >= 0; i-- {
		s = Stack{top: &cell{tok: toks[i], next: s.top}, size: s.size + 1}
	}
	return s
}

// CopyStack is the naive mutable token stack that copies all tokens on
// every version save. It exists only as the baseline of experiment
// E13 (shared-suffix versions vs full copies); the engine itself uses
// Stack.
type CopyStack struct {
	toks []detector.Token // toks[len-1] is the top
}

// NewCopyStack builds a naive stack whose top is toks[0].
func NewCopyStack(toks []detector.Token) *CopyStack {
	c := &CopyStack{toks: make([]detector.Token, len(toks))}
	for i, t := range toks {
		c.toks[len(toks)-1-i] = t
	}
	return c
}

// Save returns a full copy of the stack: the O(stack) cost the shared
// suffix representation avoids.
func (c *CopyStack) Save() *CopyStack {
	cp := make([]detector.Token, len(c.toks))
	copy(cp, c.toks)
	return &CopyStack{toks: cp}
}

// Len returns the number of tokens.
func (c *CopyStack) Len() int { return len(c.toks) }

// Pop removes and returns the top token.
func (c *CopyStack) Pop() (detector.Token, bool) {
	if len(c.toks) == 0 {
		return detector.Token{}, false
	}
	t := c.toks[len(c.toks)-1]
	c.toks = c.toks[:len(c.toks)-1]
	return t, true
}

// Push adds toks such that toks[0] becomes the new top.
func (c *CopyStack) Push(toks []detector.Token) {
	for i := len(toks) - 1; i >= 0; i-- {
		c.toks = append(c.toks, toks[i])
	}
}
