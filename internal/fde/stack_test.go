package fde

import (
	"testing"

	"dlsearch/internal/detector"
)

func toks(n int) []detector.Token {
	out := make([]detector.Token, n)
	for i := range out {
		out[i] = detector.Token{Symbol: "t", Value: string(rune('a' + i%26))}
	}
	return out
}

func TestStackOrder(t *testing.T) {
	s := NewStack([]detector.Token{{Value: "1"}, {Value: "2"}, {Value: "3"}})
	if s.Len() != 3 || s.Empty() {
		t.Fatalf("Len = %d", s.Len())
	}
	for _, want := range []string{"1", "2", "3"} {
		var tok detector.Token
		var ok bool
		tok, s, ok = s.Pop()
		if !ok || tok.Value != want {
			t.Fatalf("popped %q, want %q", tok.Value, want)
		}
	}
	if !s.Empty() {
		t.Fatal("stack should be empty")
	}
	if _, _, ok := s.Pop(); ok {
		t.Fatal("pop of empty stack should fail")
	}
}

func TestStackPushOrder(t *testing.T) {
	s := NewStack([]detector.Token{{Value: "rest"}})
	s = s.Push([]detector.Token{{Value: "x"}, {Value: "y"}})
	want := []string{"x", "y", "rest"}
	for _, w := range want {
		var tok detector.Token
		tok, s, _ = s.Pop()
		if tok.Value != w {
			t.Fatalf("popped %q, want %q", tok.Value, w)
		}
	}
}

func TestStackVersionsShareSuffix(t *testing.T) {
	base := NewStack(toks(100))
	// Saving a version is just a copy of the struct.
	v1 := base
	// Consuming from v1 must not disturb base.
	_, v1, _ = v1.Pop()
	_, v1, _ = v1.Pop()
	if base.Len() != 100 || v1.Len() != 98 {
		t.Fatalf("lens = %d, %d", base.Len(), v1.Len())
	}
	// The two versions share the same suffix cells.
	if base.top.next.next != v1.top {
		t.Fatal("suffix not shared between versions")
	}
}

func TestStackPeek(t *testing.T) {
	s := NewStack(nil)
	if _, ok := s.Peek(); ok {
		t.Fatal("peek of empty should fail")
	}
	s = s.Push([]detector.Token{{Value: "top"}})
	if tok, ok := s.Peek(); !ok || tok.Value != "top" {
		t.Fatalf("peek = %v, %v", tok, ok)
	}
	if s.Len() != 1 {
		t.Fatal("peek must not consume")
	}
}

func TestCopyStackMatchesStack(t *testing.T) {
	input := toks(20)
	s := NewStack(input)
	c := NewCopyStack(input)
	for !s.Empty() {
		var st, ct detector.Token
		var ok bool
		st, s, ok = s.Pop()
		if !ok {
			t.Fatal("shared pop failed")
		}
		ct, ok = c.Pop()
		if !ok || ct != st {
			t.Fatalf("stacks disagree: %v vs %v", ct, st)
		}
	}
	if c.Len() != 0 {
		t.Fatal("copy stack not drained")
	}
	if _, ok := c.Pop(); ok {
		t.Fatal("pop of empty copy stack should fail")
	}
}

func TestCopyStackSaveIsIsolated(t *testing.T) {
	c := NewCopyStack(toks(5))
	saved := c.Save()
	c.Pop()
	c.Push([]detector.Token{{Value: "zz"}})
	if saved.Len() != 5 {
		t.Fatalf("saved copy affected by mutation: %d", saved.Len())
	}
}

// BenchmarkTokenStackSharing and BenchmarkTokenStackCopying are
// experiment E13: version saves during backtracking are O(1) with
// shared suffixes versus O(stack) with naive copying.
func BenchmarkTokenStackSharing(b *testing.B) {
	input := toks(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewStack(input)
		for j := 0; j < 100; j++ {
			v := s // save version: O(1)
			_, v, _ = v.Pop()
			_ = v
		}
	}
}

func BenchmarkTokenStackCopying(b *testing.B) {
	input := toks(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewCopyStack(input)
		for j := 0; j < 100; j++ {
			v := s.Save() // save version: O(stack)
			v.Pop()
		}
	}
}
