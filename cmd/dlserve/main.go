// Command dlserve serves the full-text search engine over HTTP, in
// the two roles of the paper's shared-nothing architecture:
//
//	dlserve node -addr :8081 -data-dir /var/lib/dlsearch/node1
//	    serve one index fragment (the dist.Node operations) so a
//	    coordinator can address it as a remote cluster node. With a
//	    data dir the node keeps a write-ahead op log (every ingest is
//	    fsynced to it before being applied) and boots by restoring the
//	    last snapshot plus replaying the log's suffix — acknowledged
//	    writes survive even kill -9. Snapshots (graceful shutdown,
//	    POST /node/snapshot, periodic -compact-interval) double as log
//	    compaction points, bounding replay time.
//
//	dlserve coordinator -addr :8080 -nodes http://h1:8081,http://h2:8082
//	    serve /search, /add, /stats and /healthz over a cluster of
//	    remote nodes (or -local k in-process nodes), with per-node
//	    deadlines and straggler handling. With -replicas R the node
//	    list is sliced into replica groups of R: writes fan out to all
//	    replicas of a partition and reads fail over between them, so
//	    killing any single node does not degrade the ranking. With
//	    -anti-entropy-interval the coordinator periodically compares
//	    replica content checksums within each group and resyncs a
//	    divergent or wiped replica from the healthiest member — the
//	    cluster heals itself without operator action (also on demand
//	    via POST /anti-entropy).
//
//	dlserve coordinator -addr :8080 -engine ausopen \
//	    -indexes Article.body,Player.history -local 2
//	    additionally host a conceptual engine: POST /query evaluates the
//	    paper's query language (SELECT ... WHERE contains(...) AND
//	    About(...)), fanning every contains predicate over the cluster
//	    named by its "Class.attr" key, and POST /add/stream ingests an
//	    NDJSON stream of webspace documents and owned content one line
//	    at a time — the stream may be far larger than -max-body.
//
// A replicated two-partition deployment is four `dlserve node`
// processes plus one coordinator pointed at them:
//
//	dlserve coordinator -addr :8080 -replicas 2 \
//	    -nodes http://h1:8081,http://h2:8082,http://h3:8083,http://h4:8084
//	curl -s -X POST localhost:8080/add \
//	    -d '{"text":"melbourne champion trophy","url":"doc-1"}'
//	curl -s -X POST localhost:8080/search -d '{"query":"champion","n":10}'
//	curl -s localhost:8080/stats
//
// Both roles shut down gracefully on SIGINT/SIGTERM, draining
// in-flight requests (and, with -data-dir, snapshotting the fragment).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux, served only on -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dlsearch/internal/core"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/obs"
	"dlsearch/internal/persist"
	"dlsearch/internal/server"
	"dlsearch/internal/site"
	"dlsearch/internal/slo"
)

// logger is the process's one leveled logger; -log-level adjusts it
// before anything else runs.
var logger = obs.NewLogger(os.Stderr, "dlserve", obs.LevelInfo)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "", "listen address (host:port)")
	cache := fs.Int("cache", core.DefaultQueryCacheSize, "query-cache capacity (0 disables)")
	lambda := fs.Float64("lambda", 0, "ranking smoothing parameter (0 keeps the default)")
	nodes := fs.String("nodes", "", "comma-separated remote node base URLs (coordinator)")
	local := fs.Int("local", 0, "number of in-process nodes when -nodes is empty (coordinator)")
	replicas := fs.Int("replicas", 1, "replication factor: nodes are sliced into replica groups of this size (coordinator)")
	index := fs.String("index", "default", "name of the served index (coordinator)")
	indexes := fs.String("indexes", "", "comma-separated names of several served indexes, each its own cluster: remote -nodes are split evenly across them in order, or every index gets -local in-process nodes; empty serves the single -index (coordinator)")
	engineKind := fs.String("engine", "", "conceptual engine serving POST /query and webspace stream lines: 'ausopen' hosts the paper's Australian Open schema; empty disables (coordinator)")
	maxBody := fs.Int64("max-body", 0, "request body cap in bytes, 0 selects the default; the /add/stream body is exempt — only its per-line size is capped (coordinator)")
	streamFlush := fs.Int("stream-flush", 0, "per-index document batch size of /add/stream, 0 selects the default (coordinator)")
	nodeTimeout := fs.Duration("node-timeout", 2*time.Second, "per-node call deadline, 0 disables (coordinator)")
	searchTimeout := fs.Duration("search-timeout", 5*time.Second, "end-to-end /search deadline, 0 disables (coordinator)")
	maxConc := fs.Int("max-concurrent", server.DefaultMaxConcurrent, "bound on in-flight requests")
	frags := fs.Int("frags", 0, "per-node idf fragmentation granularity for budgeted /search, 0 selects the default (coordinator)")
	fragBudget := fs.Int("frag-budget", 0, "default /search fragment budget: leading fragments evaluated per node, 0 = exact (coordinator)")
	minQuality := fs.Float64("min-quality", 0, "default /search quality floor in (0,1], 0 disables (coordinator)")
	sloMS := fs.Float64("slo-ms", 0, "target /search latency SLO in milliseconds — enables the adaptive budget controller: fragment budgets are picked from the learned quality/latency curve and overload degrades quality instead of 503ing (503 only below -min-quality); 0 keeps /search manual (coordinator)")
	memBudget := fs.Int("mem-budget", 0, "posting-store memory budget in bytes, cold lists held compressed, 0 disables (node)")
	dataDir := fs.String("data-dir", "", "durability directory: restore on boot, snapshot on shutdown and on POST /node/snapshot (node)")
	oplogDir := fs.String("oplog-dir", "", "write-ahead op log directory — ingest is logged durably before applying and replayed over the snapshot on boot; defaults to -data-dir (node)")
	compactInterval := fs.Duration("compact-interval", 0, "periodic snapshot + op-log compaction interval, 0 disables; requires -data-dir (node)")
	resyncFrom := fs.String("resync", "", "peer node base URL to pull the fragment from at boot — seeds a fresh or wiped replica from a live group member (node)")
	verifyPeer := fs.String("verify", "", "peer node base URL to compare content checksums with after boot recovery — a mismatch pulls the peer's state instead of serving wrong rankings (node)")
	antiEntropy := fs.Duration("anti-entropy-interval", 0, "periodic replica checksum comparison + auto-resync interval, 0 disables (coordinator)")
	wire := fs.String("wire", "binary", "node wire protocol: binary (framed codec, persistent connections, falls back to JSON per peer) or json (HTTP/JSON only — debugging and third-party nodes)")
	logLevel := fs.String("log-level", "info", "log threshold: debug, info, warn or error (background-loop noise logs at debug)")
	slowQueryMS := fs.Int("slow-query-ms", 0, "log one JSON line with the full span breakdown for every query slower than this; 0 disables, negative logs every query")
	pprofAddr := fs.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060), empty disables")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	logger.SetLevel(level)
	if *wire != "binary" && *wire != "json" {
		fatal(fmt.Errorf("-wire must be binary or json, got %q", *wire))
	}
	jsonWire := *wire == "json"
	if *pprofAddr != "" {
		go func() {
			logger.Infof("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Errorf("pprof server: %v", err)
			}
		}()
	}
	// One metrics registry per process, served on GET /metrics by
	// whichever role runs; the slow-query log shares its stderr stream
	// with the leveled logger.
	reg := obs.NewRegistry()
	var slow *obs.SlowQueryLog
	switch {
	case *slowQueryMS > 0:
		slow = obs.NewSlowQueryLog(os.Stderr, time.Duration(*slowQueryMS)*time.Millisecond)
	case *slowQueryMS < 0:
		slow = obs.NewSlowQueryLog(os.Stderr, time.Nanosecond)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	switch cmd {
	case "node":
		if *addr == "" {
			*addr = ":8081"
		}
		runNode(ctx, *addr, *lambda, *cache, *maxConc, *memBudget, *dataDir, *oplogDir, *resyncFrom, *verifyPeer, *compactInterval, jsonWire, reg, slow)
	case "coordinator":
		if *addr == "" {
			*addr = ":8080"
		}
		// Adaptive serving: the controller owns the per-index
		// quality/latency curve; every node of the cluster feeds it
		// through its cost hook.
		var ctl *slo.Controller
		if *sloMS > 0 {
			fragK := *frags
			if fragK <= 0 {
				fragK = ir.DefaultFragments
			}
			ctl = slo.New(slo.Config{
				Target:     time.Duration(*sloMS * float64(time.Millisecond)),
				MaxBudget:  fragK,
				MinQuality: *minQuality,
			})
		}
		names := []string{*index}
		if *indexes != "" {
			names = names[:0]
			for _, n := range strings.Split(*indexes, ",") {
				if n = strings.TrimSpace(n); n != "" {
					names = append(names, n)
				}
			}
			if len(names) == 0 {
				fatal(fmt.Errorf("-indexes names no index"))
			}
		}
		nodeLists := make([]string, len(names))
		if *nodes != "" && len(names) > 1 {
			// Remote nodes are sliced evenly across the indexes, in
			// order: 4 nodes over 2 indexes = 2 nodes each.
			urls := splitURLs(*nodes)
			if len(urls)%len(names) != 0 {
				fatal(fmt.Errorf("-nodes lists %d nodes, not divisible over %d indexes", len(urls), len(names)))
			}
			per := len(urls) / len(names)
			for i := range names {
				nodeLists[i] = strings.Join(urls[i*per:(i+1)*per], ",")
			}
		} else {
			for i := range names {
				nodeLists[i] = *nodes
			}
		}
		clusters := make(map[string]*dist.Cluster, len(names))
		caches := map[string]*core.QueryCache{}
		for i, name := range names {
			cluster, cqc, err := buildCluster(nodeLists[i], *local, *replicas, *lambda, *nodeTimeout, *cache, jsonWire, reg)
			if err != nil {
				fatal(err)
			}
			clusters[name] = cluster
			if cqc != nil {
				caches[name] = cqc
			}
		}
		// A single index reports its cache top-level; with several,
		// each local cluster owns its own cache, reported per index.
		var qc *core.QueryCache
		if len(names) == 1 {
			qc = caches[names[0]]
			caches = nil
		}
		var eng *core.Engine
		switch *engineKind {
		case "":
		case "ausopen":
			var err error
			if eng, err = core.NewAusOpen(site.Generate(1)); err != nil {
				fatal(fmt.Errorf("-engine ausopen: %w", err))
			}
		default:
			fatal(fmt.Errorf("-engine must be empty or ausopen, got %q", *engineKind))
		}
		co := server.NewCoordinator(clusters, &server.CoordinatorConfig{
			MaxBody:       *maxBody,
			MaxConcurrent: *maxConc,
			SearchTimeout: *searchTimeout,
			Cache:         qc,
			Caches:        caches,
			Frags:         *frags,
			FragBudget:    *fragBudget,
			MinQuality:    *minQuality,
			Metrics:       reg,
			SlowQuery:     slow,
			SLO:           ctl,
			Engine:        eng,
			StreamFlush:   *streamFlush,
		})
		if *antiEntropy > 0 {
			// Background self-healing: periodically compare replica
			// checksums within each group and resync divergent replicas
			// from their group — no operator action needed.
			for _, cluster := range clusters {
				go cluster.RunAntiEntropy(ctx, *antiEntropy)
			}
		}
		logger.Infof("coordinator listening on %s", *addr)
		if err := server.Run(ctx, *addr, co.Handler(), 0); err != nil {
			fatal(err)
		}
	default:
		usage()
		os.Exit(2)
	}
}

// runNode boots one fragment server. Recovery is snapshot + op-log
// replay: restore the data dir's snapshot if one exists (a corrupt
// snapshot is fatal — the node refuses to serve a partial index
// rather than silently dropping documents from every ranking), then
// replay the write-ahead op log's suffix past the snapshot's recorded
// position, so ingest acknowledged before a crash — even kill -9 —
// survives the restart. -resync instead pulls the fragment from a
// live peer (overriding any local state — the peer IS the group
// truth) and resets the log to the pulled position. The node serves
// until the context cancels, then snapshots the fragment (compacting
// the log) so the next boot replays almost nothing.
func runNode(ctx context.Context, addr string, lambda float64, cacheCap, maxConc, memBudget int, dataDir, oplogDir, resyncFrom, verifyPeer string, compactInterval time.Duration, jsonWire bool, reg *obs.Registry, slow *obs.SlowQueryLog) {
	if oplogDir == "" {
		oplogDir = dataDir
	}
	if compactInterval > 0 && dataDir == "" {
		fatal(fmt.Errorf("-compact-interval requires -data-dir (compaction persists a snapshot)"))
	}
	ix := ir.NewIndex()
	restoredUnix := int64(0)
	snapPos := uint64(0)
	for _, dir := range []string{dataDir, oplogDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fatal(err)
			}
		}
	}
	// -resync overrides the local snapshot entirely — the peer's state
	// IS the group truth — so the disk restore is skipped, which also
	// lets -resync heal a node whose local snapshot is corrupt (the
	// very case it exists for) instead of dying on the corrupt file.
	if dataDir != "" && resyncFrom == "" {
		path := persist.SnapshotPath(dataDir)
		st, err := persist.LoadFile(path)
		switch {
		case err == nil:
			restored, ierr := ir.ImportState(st)
			if ierr != nil {
				fatal(fmt.Errorf("refusing to serve: %w: %v", persist.ErrCorrupt, ierr))
			}
			ix = restored
			snapPos = st.LogPos
			if fi, serr := os.Stat(path); serr == nil {
				restoredUnix = fi.ModTime().Unix()
			}
			logger.Infof("restored %d docs, %d terms from %s (log position %d)",
				ix.DocCount(), ix.TermCount(), path, snapPos)
		case errors.Is(err, fs.ErrNotExist):
			// First boot: nothing to restore.
		default:
			fatal(fmt.Errorf("refusing to serve: %w", err))
		}
	}
	var oplog *persist.OpLog
	if oplogDir != "" && resyncFrom == "" {
		oplog = openAndReplayLog(oplogDir, snapPos, ix)
	}
	resynced := false
	if resyncFrom != "" {
		peer := dist.NewRemoteNode(resyncFrom, nil)
		st, err := peer.SnapshotState(ctx)
		if err != nil {
			fatal(fmt.Errorf("resync from %s: %w", resyncFrom, err))
		}
		restored, err := ir.ImportState(st)
		if err != nil {
			fatal(fmt.Errorf("resync from %s: %w", resyncFrom, err))
		}
		ix = restored
		resynced = true
		oplog = resetLogTo(oplogDir, st.LogPos)
		logger.Infof("resynced %d docs, %d terms from %s (log position %d)",
			ix.DocCount(), ix.TermCount(), resyncFrom, st.LogPos)
	}
	if verifyPeer != "" {
		// Checksum-verified rejoin: compare content checksums with a
		// group peer before serving. Equal checksums prove recovery
		// reproduced the group's exact state; a mismatch means this
		// replica would serve wrong rankings, so pull the peer's full
		// state instead of joining divergent.
		peer := dist.NewRemoteNode(verifyPeer, nil)
		pl, err := peer.LoadChecksum(ctx)
		if err != nil || pl.Checksum == "" {
			fatal(fmt.Errorf("verify against %s: no checksum (%v) — refusing to serve unverified", verifyPeer, err))
		}
		if own := ix.Checksum(); own == pl.Checksum {
			logger.Infof("checksum verified against %s (%s)", verifyPeer, own)
		} else {
			logger.Warnf("checksum mismatch with %s (local %s, peer %s) — pulling peer state",
				verifyPeer, own, pl.Checksum)
			st, err := peer.SnapshotState(ctx)
			if err != nil {
				fatal(fmt.Errorf("verify-heal from %s: %w", verifyPeer, err))
			}
			restored, err := ir.ImportState(st)
			if err != nil {
				fatal(fmt.Errorf("verify-heal from %s: %w", verifyPeer, err))
			}
			ix = restored
			resynced = true
			if oplog != nil {
				if err := oplog.Reset(st.LogPos); err != nil {
					fatal(fmt.Errorf("op log reset: %w", err))
				}
			} else {
				oplog = resetLogTo(oplogDir, st.LogPos)
			}
			logger.Infof("healed from %s: %d docs, %d terms (log position %d)",
				verifyPeer, ix.DocCount(), ix.TermCount(), st.LogPos)
		}
	}
	if lambda != 0 {
		ix.SetLambda(lambda)
	}
	cfg := &server.NodeConfig{
		MaxConcurrent: maxConc,
		MemoryBudget:  memBudget,
		DataDir:       dataDir,
		OpLog:         oplog,
		JSONOnly:      jsonWire,
		Metrics:       reg,
		SlowQuery:     slow,
	}
	if cacheCap > 0 {
		cfg.Cache = core.NewQueryCache(cacheCap)
	}
	ns := server.NewNodeServer(ix, cfg)
	if restoredUnix > 0 {
		ns.MarkRestored(restoredUnix)
	}
	if resynced && dataDir != "" {
		// Persist the pulled fragment before serving. The op log was
		// just reset to base = the pulled position, so until a snapshot
		// recording that position is on disk, a crash leaves the next
		// boot with no snapshot and a log starting past 0 — it would
		// refuse to serve and need another manual -resync. Failing to
		// write that snapshot is therefore fatal, not a warning: the
		// resynced state and the reset log base must agree on disk
		// before the node serves.
		snap, err := ns.Snapshot()
		if err != nil {
			fatal(fmt.Errorf("refusing to serve: post-resync snapshot: %w", err))
		}
		logger.Infof("snapshot %s (%d docs)", snap.Path, snap.Docs)
	}
	if compactInterval > 0 {
		// Periodic snapshot + log compaction: bound boot-time replay by
		// regularly folding the log's prefix into a snapshot. A failed
		// pass only costs replay time on the next boot, never
		// correctness, so it logs and keeps ticking.
		go func() {
			t := time.NewTicker(compactInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if snap, err := ns.Snapshot(); err != nil {
						logger.Warnf("periodic snapshot failed: %v", err)
					} else {
						logger.Debugf("compacted: snapshot %s (%d docs, %d bytes)",
							snap.Path, snap.Docs, snap.Bytes)
					}
				}
			}
		}()
	}
	logger.Infof("node listening on %s", addr)
	err := server.Run(ctx, addr, ns.Handler(), 0)
	if dataDir != "" && ctx.Err() != nil {
		// Graceful shutdown (not a listen failure): persist the
		// fragment so a restart serves it without reindexing.
		if snap, serr := ns.Snapshot(); serr != nil {
			logger.Warnf("shutdown snapshot failed: %v", serr)
		} else {
			logger.Infof("snapshot %s (%d docs, %d bytes)", snap.Path, snap.Docs, snap.Bytes)
		}
	}
	if err != nil {
		fatal(err)
	}
}

// openAndReplayLog opens the write-ahead op log and folds its suffix
// past the snapshot position into ix. A torn tail (kill -9 mid-append)
// was never acknowledged, so truncating it is safe and logged;
// interior corruption is fatal — the log is the source of truth and a
// hole in it means acknowledged writes are unrecoverable here (boot
// with -resync to pull the fragment from a live peer instead). Replay
// starts at the log's base, not the snapshot position: the overlap is
// deduplicated by oid, and over-replay is the cheap direction.
func openAndReplayLog(dir string, snapPos uint64, ix *ir.Index) *persist.OpLog {
	l, err := persist.OpenOpLog(dir)
	if err != nil {
		fatal(fmt.Errorf("refusing to serve: %w", err))
	}
	if tb := l.TruncatedBytes(); tb > 0 {
		logger.Warnf("op log: truncated %d-byte torn tail (unacknowledged partial append)", tb)
	}
	if l.Base() > snapPos {
		fatal(fmt.Errorf("refusing to serve: op log starts at position %d but the snapshot covers only %d — operations in between are lost", l.Base(), snapPos))
	}
	replayed := 0
	if err := l.Replay(l.Base(), func(op persist.Op) error {
		if !ix.HasDoc(op.Doc) {
			ix.Add(op.Doc, op.URL, op.Text)
			replayed++
		}
		return nil
	}); err != nil {
		fatal(fmt.Errorf("refusing to serve: op log replay: %w", err))
	}
	if l.Pos() > snapPos {
		logger.Infof("replayed op log %d..%d (%d new docs), now %d docs",
			snapPos, l.Pos(), replayed, ix.DocCount())
	}
	return l
}

// resetLogTo replaces the node's op log with an empty one at base —
// the position of the full state that was just pulled from a peer,
// which subsumes every local record. A local log too corrupt to open
// is simply recreated: the resync exists to discard local state.
func resetLogTo(dir string, base uint64) *persist.OpLog {
	if dir == "" {
		return nil
	}
	l, err := persist.OpenOpLog(dir)
	if err != nil {
		if rerr := os.Remove(persist.OpLogPath(dir)); rerr != nil {
			fatal(fmt.Errorf("op log unreadable (%v) and unremovable: %w", err, rerr))
		}
		if l, err = persist.OpenOpLog(dir); err != nil {
			fatal(fmt.Errorf("op log: %w", err))
		}
	}
	if err := l.Reset(base); err != nil {
		fatal(fmt.Errorf("op log reset: %w", err))
	}
	return l
}

// splitURLs splits a comma-separated URL list, dropping blanks.
func splitURLs(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// buildCluster assembles the coordinator's cluster: remote nodes from
// the URL list (sliced into replica groups of r), or k in-process
// nodes as a single-binary deployment. The query cache exists only in
// the local mode, where it sits on the nodes' top-N path and its
// /stats counters mean something; remote nodes cache server-side
// (their own -cache flag) instead.
func buildCluster(nodeURLs string, local, r int, lambda float64, nodeTimeout time.Duration, cacheCap int, jsonWire bool, reg *obs.Registry) (*dist.Cluster, *core.QueryCache, error) {
	opts := &dist.Options{Lambda: lambda, NodeTimeout: nodeTimeout, Logger: logger}
	if reg != nil {
		opts.Metrics = &dist.ClusterMetrics{
			RPCLatency:     reg.Histogram("dl_rpc_latency_seconds", "Routed per-node cluster call latency (failures included).", "", obs.LatencyBounds()),
			AntiEntropyDur: reg.Histogram("dl_anti_entropy_seconds", "Full anti-entropy pass duration.", "", obs.LatencyBounds()),
			ResyncDur:      reg.Histogram("dl_resync_seconds", "Replica resync duration.", "", obs.LatencyBounds()),
			Retries:        reg.Counter("dl_retries_total", "Self-healing RPC retries.", ""),
			BackoffSeconds: reg.Histogram("dl_backoff_seconds", "Backoff sleeps between retries.", "", obs.LatencyBounds()),
		}
	}
	if nodeURLs != "" {
		var rm *dist.RemoteMetrics
		if reg != nil {
			rm = &dist.RemoteMetrics{
				Latency:  reg.Histogram("dl_rpc_client_seconds", "Remote-node HTTP round-trip latency.", "", obs.LatencyBounds()),
				BytesOut: reg.Counter("dl_rpc_bytes_out_total", "Request bytes sent to remote nodes.", ""),
				BytesIn:  reg.Counter("dl_rpc_bytes_in_total", "Response bytes read from remote nodes.", ""),
			}
		}
		var members []dist.Node
		for _, u := range strings.Split(nodeURLs, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			rn := dist.NewRemoteNode(u, nil)
			if jsonWire {
				rn.SetCodec(dist.CodecJSON)
			} else {
				// Real remote processes: open the persistent-connection
				// transport; peers that refuse it (older or -wire=json
				// nodes) negotiate down to HTTP binary or JSON per node.
				rn.SetCodec(dist.CodecWire)
			}
			rn.SetMetrics(rm)
			members = append(members, rn)
		}
		if len(members) == 0 {
			return nil, nil, fmt.Errorf("no node URLs in -nodes")
		}
		cluster, err := dist.NewReplicatedCluster(members, r, opts)
		return cluster, nil, err
	}
	if local < 1 {
		local = 1
	}
	var qc *core.QueryCache
	if cacheCap > 0 {
		qc = core.NewQueryCache(cacheCap)
	}
	var nm *dist.NodeMetrics
	if reg != nil {
		nm = &dist.NodeMetrics{
			Scoring:    reg.Histogram("dl_node_scoring_seconds", "Local query evaluation wall time.", "", obs.LatencyBounds()),
			IngestDocs: reg.Counter("dl_node_ingest_docs_total", "Documents indexed on in-process nodes.", ""),
		}
	}
	members := make([]dist.Node, local)
	for i := range members {
		ix := ir.NewIndex()
		if lambda != 0 {
			ix.SetLambda(lambda)
		}
		ln := dist.NewLocalNode(ix)
		if qc != nil {
			ln.SetResolver(qc.Resolve)
			ln.SetRankingCache(qc)
		}
		ln.SetMetrics(nm)
		members[i] = ln
	}
	cluster, err := dist.NewReplicatedCluster(members, r, opts)
	return cluster, qc, err
}

func fatal(err error) {
	logger.Errorf("%v", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dlserve {node|coordinator} [flags]

  dlserve node -addr :8081 -data-dir /var/lib/dlsearch/node1
  dlserve node -addr :8081 -data-dir d1 -compact-interval 5m   (bounded replay)
  dlserve node -addr :8081 -resync http://h2:8082     (seed from a live peer)
  dlserve node -addr :8081 -data-dir d1 -verify http://h2:8082 (checksum rejoin)
  dlserve coordinator -addr :8080 -nodes http://h1:8081,http://h2:8082
  dlserve coordinator -addr :8080 -replicas 2 -anti-entropy-interval 30s \
      -nodes http://h1:8081,...
  dlserve coordinator -addr :8080 -local 4
  dlserve coordinator -addr :8080 -engine ausopen \
      -indexes Article.body,Player.history -nodes http://h1:8081,...,http://h4:8084
      (conceptual engine: POST /query runs the paper's query language with
      contains() fanned over the named clusters; POST /add/stream ingests
      NDJSON webspace documents and owned content with bounded memory)`)
}
