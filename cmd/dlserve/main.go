// Command dlserve serves the full-text search engine over HTTP, in
// the two roles of the paper's shared-nothing architecture:
//
//	dlserve node -addr :8081
//	    serve one index fragment (the dist.Node operations) so a
//	    coordinator can address it as a remote cluster node
//
//	dlserve coordinator -addr :8080 -nodes http://h1:8081,http://h2:8082
//	    serve /search, /add, /stats and /healthz over a cluster of
//	    remote nodes (or -local k in-process nodes), with per-node
//	    deadlines and straggler handling
//
// A two-machine deployment is two `dlserve node` processes plus one
// coordinator pointed at them:
//
//	curl -s -X POST localhost:8080/add \
//	    -d '{"text":"melbourne champion trophy","url":"doc-1"}'
//	curl -s -X POST localhost:8080/search -d '{"query":"champion","n":10}'
//	curl -s localhost:8080/stats
//
// Both roles shut down gracefully on SIGINT/SIGTERM, draining
// in-flight requests.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dlsearch/internal/core"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "", "listen address (host:port)")
	cache := fs.Int("cache", core.DefaultQueryCacheSize, "query-cache capacity (0 disables)")
	lambda := fs.Float64("lambda", 0, "ranking smoothing parameter (0 keeps the default)")
	nodes := fs.String("nodes", "", "comma-separated remote node base URLs (coordinator)")
	local := fs.Int("local", 0, "number of in-process nodes when -nodes is empty (coordinator)")
	index := fs.String("index", "default", "name of the served index (coordinator)")
	nodeTimeout := fs.Duration("node-timeout", 2*time.Second, "per-node call deadline, 0 disables (coordinator)")
	searchTimeout := fs.Duration("search-timeout", 5*time.Second, "end-to-end /search deadline, 0 disables (coordinator)")
	maxConc := fs.Int("max-concurrent", server.DefaultMaxConcurrent, "bound on in-flight requests")
	frags := fs.Int("frags", 0, "per-node idf fragmentation granularity for budgeted /search, 0 selects the default (coordinator)")
	fragBudget := fs.Int("frag-budget", 0, "default /search fragment budget: leading fragments evaluated per node, 0 = exact (coordinator)")
	minQuality := fs.Float64("min-quality", 0, "default /search quality floor in (0,1], 0 disables (coordinator)")
	memBudget := fs.Int("mem-budget", 0, "posting-store memory budget in bytes, cold lists held compressed, 0 disables (node)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	var handler http.Handler
	switch cmd {
	case "node":
		if *addr == "" {
			*addr = ":8081"
		}
		ix := ir.NewIndex()
		if *lambda != 0 {
			ix.SetLambda(*lambda)
		}
		cfg := &server.NodeConfig{MaxConcurrent: *maxConc, MemoryBudget: *memBudget}
		if *cache > 0 {
			cfg.Cache = core.NewQueryCache(*cache)
		}
		handler = server.NewNodeHandler(ix, cfg)
	case "coordinator":
		if *addr == "" {
			*addr = ":8080"
		}
		cluster, qc, err := buildCluster(*nodes, *local, *lambda, *nodeTimeout, *cache)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dlserve:", err)
			os.Exit(1)
		}
		co := server.NewCoordinator(map[string]*dist.Cluster{*index: cluster}, &server.CoordinatorConfig{
			MaxConcurrent: *maxConc,
			SearchTimeout: *searchTimeout,
			Cache:         qc,
			Frags:         *frags,
			FragBudget:    *fragBudget,
			MinQuality:    *minQuality,
		})
		handler = co.Handler()
	default:
		usage()
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "dlserve: %s listening on %s\n", cmd, *addr)
	if err := server.Run(ctx, *addr, handler, 0); err != nil {
		fmt.Fprintln(os.Stderr, "dlserve:", err)
		os.Exit(1)
	}
}

// buildCluster assembles the coordinator's cluster: remote nodes from
// the URL list, or k in-process nodes as a single-binary deployment.
// The query cache exists only in the local mode, where it sits on the
// nodes' top-N path and its /stats counters mean something; remote
// nodes cache server-side (their own -cache flag) instead.
func buildCluster(nodeURLs string, local int, lambda float64, nodeTimeout time.Duration, cacheCap int) (*dist.Cluster, *core.QueryCache, error) {
	opts := &dist.Options{Lambda: lambda, NodeTimeout: nodeTimeout}
	if nodeURLs != "" {
		var members []dist.Node
		for _, u := range strings.Split(nodeURLs, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			members = append(members, dist.NewRemoteNode(u, nil))
		}
		if len(members) == 0 {
			return nil, nil, fmt.Errorf("no node URLs in -nodes")
		}
		return dist.NewClusterOf(members, opts), nil, nil
	}
	if local < 1 {
		local = 1
	}
	var qc *core.QueryCache
	if cacheCap > 0 {
		qc = core.NewQueryCache(cacheCap)
	}
	members := make([]dist.Node, local)
	for i := range members {
		ix := ir.NewIndex()
		if lambda != 0 {
			ix.SetLambda(lambda)
		}
		ln := dist.NewLocalNode(ix)
		if qc != nil {
			ln.SetResolver(qc.Resolve)
			ln.SetRankingCache(qc)
		}
		members[i] = ln
	}
	return dist.NewClusterOf(members, opts), qc, nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: dlserve {node|coordinator} [flags]

  dlserve node -addr :8081
  dlserve coordinator -addr :8080 -nodes http://h1:8081,http://h2:8082
  dlserve coordinator -addr :8080 -local 4`)
}
