// Command dlsearch is the command-line front end to the search
// engine: it builds the Australian Open index and serves queries,
// prints the schema, the feature grammar and its dependency graph.
//
// Usage:
//
//	dlsearch demo                 run the Figure 13 walkthrough
//	dlsearch query -q '<query>'   evaluate an integrated query
//	dlsearch info                 print schema, path summary, sizes
//	dlsearch grammar [-dot]       print the grammar (or its dependency graph)
//
// The -seed flag varies the generated website and footage.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dlsearch"
	"dlsearch/internal/fg"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	seed := fs.Int64("seed", 1, "website/footage generation seed")
	queryText := fs.String("q", "", "query text (for the query command)")
	dot := fs.Bool("dot", false, "emit the dependency graph in Graphviz format")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	switch cmd {
	case "demo":
		runDemo(*seed)
	case "query":
		if *queryText == "" {
			fmt.Fprintln(os.Stderr, "dlsearch query -q '<query>'")
			os.Exit(2)
		}
		runQuery(*seed, *queryText)
	case "info":
		runInfo(*seed)
	case "grammar":
		runGrammar(*dot)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dlsearch {demo|query|info|grammar} [flags]")
}

func build(seed int64) *dlsearch.Engine {
	engine, _, _, err := dlsearch.BuildAusOpen(seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "build:", err)
		os.Exit(1)
	}
	return engine
}

func runDemo(seed int64) {
	engine := build(seed)
	fmt.Println("Figure 13:", strings.TrimSpace(dlsearch.Figure13Query))
	res, err := engine.Query(dlsearch.Figure13Query)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printResult(res)
}

func runQuery(seed int64, q string) {
	engine := build(seed)
	res, err := engine.Query(q)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	printResult(res)
}

func printResult(res *dlsearch.QueryResult) {
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		fmt.Printf("%s  (score %.3f)\n", strings.Join(row.Values, " | "), row.Score)
		for _, s := range row.Shots {
			fmt.Printf("  shot frames %d..%d netplay=%v\n", s.Begin, s.End, s.Netplay)
		}
	}
	fmt.Printf("%d rows\n", len(res.Rows))
}

func runInfo(seed int64) {
	engine := build(seed)
	fmt.Println("schema:")
	for _, c := range engine.Schema.Classes() {
		fmt.Printf("  class %s:", c.Name)
		for _, a := range c.Attrs {
			fmt.Printf(" %s", a)
		}
		fmt.Println()
	}
	for _, a := range engine.Schema.Associations {
		fmt.Printf("  association %s: %s -> %s\n", a.Name, a.From, a.To)
	}
	fmt.Println("\npath summary:")
	for _, p := range engine.Store.PathSummary() {
		fmt.Println(" ", p)
	}
	fmt.Printf("\n%d relations, %d associations, %d media objects\n",
		len(engine.Store.RelationNames()),
		engine.Store.Bats.TotalAssociations(),
		len(engine.MediaLocations()))
}

func runGrammar(dot bool) {
	g, err := dlsearch.ParseGrammar(fg.TennisGrammar)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if dot {
		os.Stdout.WriteString(g.Dependencies().DOT())
		return
	}
	os.Stdout.WriteString(fg.TennisGrammar)
}
