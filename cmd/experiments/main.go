// Command experiments regenerates the paper's evaluation artefacts:
// for every experiment of DESIGN.md's index it prints the measured
// rows/series next to what the paper claims. The paper is a system
// description without numeric tables, so "reproduction" means: the
// figures are reproduced functionally and every scalability /
// flexibility claim is quantified on this substrate.
//
// Run with:
//
//	go run ./cmd/experiments | tee experiments.txt
package main

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dlsearch"
	"dlsearch/internal/bat"
	"dlsearch/internal/cobra"
	"dlsearch/internal/core"
	"dlsearch/internal/detector"
	"dlsearch/internal/dist"
	"dlsearch/internal/fg"
	"dlsearch/internal/ir"
	"dlsearch/internal/monetxml"
	"dlsearch/internal/video"
)

func main() {
	e01e06()
	e02e04()
	e05()
	e07()
	e08()
	e09()
	e10()
	e11()
	e12()
	e13()
	e14()
	e15()
	e16()
	e17()
}

func header(id, title string) {
	fmt.Printf("\n=== %s — %s ===\n", id, title)
}

// E01 + E06: the running example end to end, Figure 13.
func e01e06() {
	header("E01/E06", "Australian Open engine and the Figure 13 query")
	engine, site, rep, err := dlsearch.BuildAusOpen(1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("crawl: %d documents, %d media objects, %d text bodies indexed\n",
		rep.Documents, rep.MediaParsed, rep.TextsIndexed)
	fmt.Printf("physical level: %d relations, %d associations\n", rep.Relations, rep.Associations)
	res, err := engine.Query(dlsearch.Figure13Query)
	if err != nil {
		panic(err)
	}
	fmt.Println("Figure 13 answer (paper: e.g. Monica Seles with her net-approach shots):")
	for _, row := range res.Rows {
		fmt.Printf("  %-16s %-50s score %.3f shots %v\n", row.Values[0], row.Values[1], row.Score, row.Shots)
	}
	fmt.Printf("ground truth: %v -> %s\n", site.Figure13Answer(), okIf(len(res.Rows) == len(site.Figure13Answer())))
}

// E02/E03/E04: grammars and the dependency graph.
func e02e04() {
	header("E02-E04", "feature grammars (Figures 6/7) and dependency graph (Figure 8)")
	g := fg.MustParse(fg.TennisGrammar)
	d := g.Dependencies()
	fmt.Printf("grammar: start=%s, %d rules, %d detectors, %d atoms\n",
		g.Start, len(g.Rules), len(g.Detectors), len(g.Atoms))
	fmt.Printf("rule dep MMO -> %v (paper: header, not optional mm_type)\n", d.RuleDeps("MMO"))
	fmt.Printf("siblings(header) = %v (paper: location, mm_type)\n", d.Siblings("header"))
	fmt.Printf("param deps: header -> %v, video_type -> %v\n", d.ParamDeps("header"), d.ParamDeps("video_type"))
	fmt.Printf("downward(header) = %v (paper: header, MIME_type, primary, secondary)\n", d.Downward("header"))
}

// E05: Figures 9-12, the Monet transform.
func e05() {
	header("E05", "Monet transform of the Figure 9 document (Figures 10-12)")
	s := monetxml.NewStore()
	doc := `<image key="18934" source="http://ausopen.org/seles.jpg"><date>999010530</date><colors><histogram>0.399 0.277 0.344</histogram><saturation>0.390</saturation><version>0.8</version></colors></image>`
	id, err := s.Load("u", strings.NewReader(doc))
	if err != nil {
		panic(err)
	}
	fmt.Println("schema tree / relations R1..R12:")
	for _, name := range s.RelationNames() {
		if strings.HasPrefix(name, "$") || strings.Contains(name, "[rank]") {
			continue
		}
		fmt.Printf("  R(%s) %d tuples\n", name, s.Relation(name).Len())
	}
	rec, err := s.Reconstruct(id)
	if err != nil {
		panic(err)
	}
	orig := monetxml.MustParseNode(doc)
	fmt.Printf("inverse mapping isomorphic: %s\n", okIf(orig.Equal(rec)))
}

// E07: Figure 14 Internet grammar.
func e07() {
	header("E07", "Internet grammar (Figure 14): portraits about 'champion'")
	pages, images := dlsearch.SyntheticWeb(5)
	e, err := dlsearch.NewInternetEngine(pages, images)
	if err != nil {
		panic(err)
	}
	if err := e.PopulateWeb(); err != nil {
		panic(err)
	}
	hits := e.PortraitsOnPagesAbout("champion", "winner", "trophy")
	for _, h := range hits {
		fmt.Printf("  %-44s score %.3f\n", h.Image, h.Score)
	}
	fmt.Printf("link graph edges: %d (the &html references of the grammar)\n", len(e.LinkGraph()))
}

// E08: bulkload cost.
func e08() {
	header("E08", "bulkload: O(height) memory, SAX-like cost")
	for _, docs := range []int{1000, 5000} {
		s := monetxml.NewStore()
		start := time.Now()
		for d := 0; d < docs; d++ {
			if _, err := s.Load("u", strings.NewReader(benchDoc(d))); err != nil {
				panic(err)
			}
		}
		el := time.Since(start)
		st := s.Stats()
		fmt.Printf("  docs=%5d  nodes=%7d  max live frames=%d  %.1f docs/ms\n",
			docs, st.Nodes, st.MaxStackDepth, float64(docs)/float64(el.Milliseconds()+1))
	}
	fmt.Println("  paper: memory O(document height), not O(nodes) — live frames stay constant")
}

func benchDoc(i int) string {
	return fmt.Sprintf(`<article id="%d"><title>t</title><section no="1"><para>tennis open winner</para><para>net serve</para></section><section no="2"><para>rally</para></section></article>`, i)
}

// E09: path clustering vs edge table.
func e09() {
	header("E09", "path expression: Monet transform vs generic edge mapping")
	for _, docs := range []int{500, 2000} {
		ms := monetxml.NewStore()
		es := monetxml.NewEdgeStore()
		for d := 0; d < docs; d++ {
			n := monetxml.MustParseNode(benchDoc(d))
			if _, err := ms.LoadNode("u", n); err != nil {
				panic(err)
			}
			es.LoadNode(n)
		}
		const iters = 50
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := ms.NodesAt("article/section/para"); err != nil {
				panic(err)
			}
		}
		tm := time.Since(start)
		start = time.Now()
		for i := 0; i < iters; i++ {
			es.NodesAt("article/section/para")
		}
		te := time.Since(start)
		fmt.Printf("  docs=%5d  monet=%8s  edge=%8s  speedup=%.1fx\n",
			docs, tm/iters, te/iters, float64(te)/float64(tm))
	}
	fmt.Println("  paper: path-named relations answer path expressions with single scans")
}

// E10: fragmentation sweep.
func e10() {
	header("E10", "idf-descending fragmentation: cost/quality trade-off")
	docs := corpus(5000, 10)
	ix := ir.NewIndex()
	for i, d := range docs {
		ix.Add(bat.OID(i+1), "u", d)
	}
	ix.Fragmentize(8)
	const query = "seles champion volley match"
	exact := ix.TopN(query, 10)
	fmt.Println("  cutoff  quality  time/query  top10-overlap")
	for _, frags := range []int{1, 2, 4, 8} {
		const iters = 50
		start := time.Now()
		var res []ir.Result
		var q ir.QualityEstimate
		for i := 0; i < iters; i++ {
			res, q = ix.TopNFragments(query, 10, frags)
		}
		el := time.Since(start) / iters
		fmt.Printf("  %d-of-8  %.3f    %-10s  %d/10\n", frags, q.Value(), el, overlap(res, exact))
	}
	fmt.Println("  paper: ignoring expensive low-idf fragments trades bounded quality for speed")
}

func overlap(a, b []ir.Result) int {
	set := map[bat.OID]bool{}
	for _, r := range a {
		set[r.Doc] = true
	}
	n := 0
	for _, r := range b {
		if set[r.Doc] {
			n++
		}
	}
	return n
}

// E11: distribution sweep.
func e11() {
	header("E11", "shared-nothing distribution: per-document partitioning")
	docs := corpus(8000, 4)
	single := ir.NewIndex()
	for i, d := range docs {
		single.Add(bat.OID(i+1), "u", d)
	}
	want := single.TopN("champion winner serve", 10)
	fmt.Println("  nodes  loads           correct  time/query")
	for _, k := range []int{1, 2, 4, 8} {
		c := dist.NewCluster(k, nil)
		for i, d := range docs {
			c.Add(bat.OID(i+1), "u", d)
		}
		const iters = 30
		var got []ir.Result
		start := time.Now()
		for i := 0; i < iters; i++ {
			got = c.TopN("champion winner serve", 10)
		}
		el := time.Since(start) / iters
		correct := len(got) == len(want)
		for i := range got {
			if got[i].Doc != want[i].Doc {
				correct = false
			}
		}
		fmt.Printf("  %-5d  %-14v  %-7s  %s\n", k, c.NodeLoads(), okIf(correct), el)
	}
	fmt.Println("  paper: (almost) perfect shared-nothing parallelism, exact merged ranking")
}

// E12: maintenance.
func e12() {
	header("E12", "FDS incremental maintenance vs full rebuild")
	engine, _, _, err := dlsearch.BuildAusOpen(1)
	if err != nil {
		panic(err)
	}
	full := map[string]int{}
	for k, v := range engine.Scheduler.Engine.Stats.DetectorCalls {
		full[k] = v
	}
	fmt.Printf("  initial population: header=%d segment=%d tennis=%d\n",
		full["header"], full["segment"], full["tennis"])
	impl, _ := engine.Registry.Lookup("header")
	rep, err := engine.Upgrade(&detector.Impl{
		Name: "header", Version: detector.Version{Major: 1, Minor: 1}, Fn: impl.Fn,
	})
	if err != nil {
		panic(err)
	}
	after := engine.Scheduler.Engine.Stats.DetectorCalls
	fmt.Printf("  header minor upgrade: reparses=%d, header+%d segment+%d tennis+%d\n",
		rep.Run.Reparses, after["header"]-full["header"],
		after["segment"]-full["segment"], after["tennis"]-full["tennis"])
	fmt.Println("  paper: localise changes; never regenerate complete parse trees")
}

// E13: token stack sharing (shape only; precise numbers in go test -bench).
func e13() {
	header("E13", "token stack versions: shared suffixes vs copies")
	fmt.Println("  see `go test -bench TokenStack ./internal/fde/`:")
	fmt.Println("  sharing a version is O(1); copying is O(stack) with allocations per save")
}

// E14: shot classification.
func e14() {
	header("E14", "shot classification (Figure 5) on all three court classes")
	fmt.Println("  court   shots  boundary-exact  classification-accuracy")
	for _, court := range []video.CourtKind{video.HardBlue, video.GrassGreen, video.ClayRed} {
		specs := video.RandomBroadcast(99, 30, court)
		v := video.Generate(specs, video.Options{Seed: 99})
		a := cobra.NewSegmenter().Segment(v)
		exact := len(a.Shots) == len(v.Truth)
		correct := 0
		for i := range a.Shots {
			if exact && a.Shots[i].Kind == v.Truth[i].Kind {
				correct++
			}
		}
		fmt.Printf("  %-6v  %-5d  %-14s  %d/%d\n", courtName(court), len(a.Shots), okIf(exact), correct, len(v.Truth))
	}
	fmt.Println("  paper: the algorithm generalises across court classes without parameter changes")
}

func courtName(c video.CourtKind) string {
	switch c {
	case video.GrassGreen:
		return "grass"
	case video.ClayRed:
		return "clay"
	default:
		return "hard"
	}
}

// E15: stroke recognition.
func e15() {
	header("E15", "HMM stroke recognition ([PJZ01] extension)")
	train := cobra.StrokeDataset(25, 14, 100)
	rec, err := cobra.TrainStrokes(train, 3, 8, 12, 7)
	if err != nil {
		panic(err)
	}
	test := cobra.StrokeDataset(15, 14, 200)
	classes := rec.Classes()
	fmt.Println("  confusion (rows = truth):")
	fmt.Printf("  %-10s", "")
	for _, c := range classes {
		fmt.Printf("%-10s", c)
	}
	fmt.Println()
	correct, total := 0, 0
	for _, truth := range classes {
		counts := map[string]int{}
		for _, seq := range test[truth] {
			got, _, err := rec.Classify(seq)
			if err != nil {
				panic(err)
			}
			counts[got]++
			if got == truth {
				correct++
			}
			total++
		}
		fmt.Printf("  %-10s", truth)
		for _, c := range classes {
			fmt.Printf("%-10d", counts[c])
		}
		fmt.Println()
	}
	fmt.Printf("  accuracy: %d/%d = %.2f\n", correct, total, float64(correct)/float64(total))
}

// E16: top-N optimization.
func e16() {
	header("E16", "top-N: posting-list pushdown vs full ranking")
	docs := corpus(5000, 6)
	ix := ir.NewIndex()
	for i, d := range docs {
		ix.Add(bat.OID(i+1), "u", d)
	}
	const iters = 30
	start := time.Now()
	for i := 0; i < iters; i++ {
		ix.TopN("seles trophy", 10)
	}
	opt := time.Since(start) / iters
	start = time.Now()
	for i := 0; i < iters; i++ {
		ix.TopNNaive("seles trophy", 10)
	}
	naive := time.Since(start) / iters
	fmt.Printf("  optimized=%s  naive=%s  speedup=%.1fx\n", opt, naive, float64(naive)/float64(opt))
}

// E17: a-priori restriction.
func e17() {
	header("E17", "a-priori conceptual restriction of the ranking candidate set")
	docs := corpus(20000, 8)
	ix := ir.NewIndex()
	for i, d := range docs {
		ix.Add(bat.OID(i+1), "u", d)
	}
	candidates := map[bat.OID]bool{}
	for i := 1; i <= len(docs); i += 100 {
		candidates[bat.OID(i)] = true
	}
	const iters = 20
	start := time.Now()
	for i := 0; i < iters; i++ {
		ix.TopNRestricted("champion winner serve", 10, candidates)
	}
	restricted := time.Since(start) / iters
	start = time.Now()
	for i := 0; i < iters; i++ {
		ix.TopN("champion winner serve", len(docs))
	}
	unrestricted := time.Since(start) / iters
	fmt.Printf("  restricted(1%% candidates)=%s  full-ranking=%s  speedup=%.1fx\n",
		restricted, unrestricted, float64(unrestricted)/float64(restricted))
	_ = core.Figure13Query
	sort.Strings(nil)
}

func corpus(n int, seed int64) []string {
	common := []string{"match", "play", "game", "set", "court", "ball"}
	rare := []string{"seles", "hingis", "capriati", "melbourne", "trophy",
		"champion", "winner", "ace", "volley", "smash", "rally", "serve"}
	rng := newRand(seed)
	docs := make([]string, n)
	for i := range docs {
		var sb strings.Builder
		for w := 0; w < 40; w++ {
			if rng.Intn(4) == 0 {
				sb.WriteString(rare[rng.Intn(len(rare))])
			} else {
				sb.WriteString(common[rng.Intn(len(common))])
			}
			sb.WriteByte(' ')
		}
		docs[i] = sb.String()
	}
	return docs
}

func okIf(ok bool) string {
	if ok {
		return "OK"
	}
	return "MISMATCH"
}

func newRand(seed int64) *randSource {
	return &randSource{state: uint64(seed)*2862933555777941757 + 3037000493}
}

// randSource is a tiny deterministic PRNG (xorshift*), avoiding an
// extra math/rand import tangle in this harness.
type randSource struct{ state uint64 }

func (r *randSource) Intn(n int) int {
	r.state ^= r.state >> 12
	r.state ^= r.state << 25
	r.state ^= r.state >> 27
	return int((r.state * 2685821657736338717 >> 33) % uint64(n))
}
