// Command benchcompare guards the perf trajectory in CI: it parses
// `go test -bench -benchmem` output from stdin, looks every benchmark
// up in BENCH_baseline.json, and fails loudly (non-zero exit plus a
// GitHub ::error:: annotation) when allocations regress beyond the
// tolerance. Wall-clock is deliberately NOT gated — CI machines are
// too noisy — but is printed for the log; allocs/op is deterministic
// and is the contract.
//
//	go test -run '^$' -bench E1 -benchtime=2x -benchmem . |
//	    go run ./cmd/benchcompare -baseline BENCH_baseline.json \
//	        -sections pr3_fragplan,current -tolerance 0.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// baselineEntry is one benchmark's recorded numbers; extra metric keys
// (quality, plain_kb, ...) are ignored.
type baselineEntry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"B_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// measurement is one parsed benchmark result line.
type measurement struct {
	name   string
	ns     float64
	bytes  float64
	allocs float64
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// parseBench extracts measurements from `go test -bench` output.
func parseBench(r *bufio.Scanner) []measurement {
	var out []measurement
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		m := measurement{name: fields[0], allocs: -1, bytes: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				m.ns = v
			case "B/op":
				m.bytes = v
			case "allocs/op":
				m.allocs = v
			}
		}
		out = append(out, m)
	}
	return out
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_baseline.json", "baseline JSON file")
	sections := flag.String("sections", "pr3_fragplan,current", "baseline sections to look benchmarks up in, in priority order")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional allocs/op increase over baseline")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare:", err)
		os.Exit(2)
	}
	var file map[string]json.RawMessage
	if err := json.Unmarshal(raw, &file); err != nil {
		fmt.Fprintln(os.Stderr, "benchcompare: parse baseline:", err)
		os.Exit(2)
	}
	// A gate that silently compares nothing is worse than no gate:
	// every named section must exist in the baseline, and at least one
	// benchmark must actually be compared, or we fail the run.
	secEntries := map[string]map[string]baselineEntry{}
	var secOrder []string
	for _, sec := range strings.Split(*sections, ",") {
		sec = strings.TrimSpace(sec)
		raw, ok := file[sec]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchcompare: section %q not in %s\n", sec, *baselinePath)
			os.Exit(2)
		}
		var entries map[string]baselineEntry
		if err := json.Unmarshal(raw, &entries); err != nil {
			fmt.Fprintf(os.Stderr, "benchcompare: section %q: %v\n", sec, err)
			os.Exit(2)
		}
		secEntries[sec] = entries
		secOrder = append(secOrder, sec)
	}
	// Benchmark names carry a -GOMAXPROCS suffix on multi-core hosts
	// but none on single-core ones, and sub-benchmark names may
	// themselves end in digits ("cutoff=1-of-8") — so try the exact
	// name first and the suffix-stripped one second.
	lookup := func(name string) (baselineEntry, string, bool) {
		for _, cand := range []string{name, procSuffix.ReplaceAllString(name, "")} {
			for _, sec := range secOrder {
				if e, ok := secEntries[sec][cand]; ok {
					return e, sec, true
				}
			}
		}
		return baselineEntry{}, "", false
	}

	ms := parseBench(bufio.NewScanner(os.Stdin))
	if len(ms) == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: no benchmark lines on stdin")
		os.Exit(2)
	}
	regressions, compared := 0, 0
	for _, m := range ms {
		base, sec, ok := lookup(m.name)
		if !ok {
			fmt.Printf("SKIP %-55s not in baseline (record it in %s)\n", m.name, *baselinePath)
			continue
		}
		if m.allocs < 0 || base.AllocsPerOp <= 0 {
			fmt.Printf("SKIP %-55s no allocs/op to compare\n", m.name)
			continue
		}
		compared++
		limit := base.AllocsPerOp * (1 + *tolerance)
		status := "ok  "
		if m.allocs > limit {
			status = "FAIL"
			regressions++
			fmt.Printf("::error title=alloc regression::%s: %.0f allocs/op vs baseline %.0f (%s, limit %.0f)\n",
				m.name, m.allocs, base.AllocsPerOp, sec, limit)
		}
		fmt.Printf("%s %-55s allocs %6.0f / base %6.0f (%s)  ns %10.0f / base %10.0f\n",
			status, m.name, m.allocs, base.AllocsPerOp, sec, m.ns, base.NsPerOp)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcompare: %d alloc regression(s) beyond %.0f%% tolerance\n",
			regressions, *tolerance*100)
		os.Exit(1)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchcompare: zero benchmarks compared — baseline and bench run are disjoint; gate would be meaningless")
		os.Exit(2)
	}
	fmt.Printf("benchcompare: no alloc regressions (%d compared)\n", compared)
}
