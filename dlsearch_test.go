package dlsearch

import (
	"strings"
	"testing"
)

// TestPublicAPIQuickstart exercises the exported surface end to end:
// build, query, inspect — what a downstream user does first.
func TestPublicAPIQuickstart(t *testing.T) {
	engine, site, report, err := BuildAusOpen(1)
	if err != nil {
		t.Fatal(err)
	}
	if report.Documents == 0 || report.MediaParsed == 0 {
		t.Fatalf("report = %+v", report)
	}
	res, err := engine.Query(Figure13Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(site.Figure13Answer()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if got := len(engine.MediaLocations()); got != 2*len(site.Players) {
		t.Fatalf("media locations = %d", got)
	}
}

func TestPublicAPIModeling(t *testing.T) {
	schema := AusOpenSchema()
	if schema.Class("Player") == nil {
		t.Fatal("schema incomplete")
	}
	g, err := ParseGrammar(TennisGrammar)
	if err != nil {
		t.Fatal(err)
	}
	if g.Start != "MMO" {
		t.Fatalf("start = %s", g.Start)
	}
	if _, err := ParseGrammar("not a grammar %%"); err == nil {
		t.Fatal("bad grammar accepted")
	}
	reg := NewRegistry()
	if len(reg.Names()) != 0 {
		t.Fatal("fresh registry not empty")
	}
	if _, err := New(schema, g, reg); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPICrawler(t *testing.T) {
	site := GenerateSite(2)
	c := NewCrawler(AusOpenSchema(), site.Fetch)
	res, err := c.Crawl(site.BaseURL + "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Documents) == 0 || len(res.Media) == 0 {
		t.Fatal("crawl empty")
	}
}

func TestPublicAPIInternet(t *testing.T) {
	pages, images := SyntheticWeb(3)
	e, err := NewInternetEngine(pages, images)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.PopulateWeb(); err != nil {
		t.Fatal(err)
	}
	hits := e.PortraitsOnPagesAbout("champion")
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	for _, h := range hits {
		if !strings.HasSuffix(h.Image, ".jpg") {
			t.Fatalf("hit = %+v", h)
		}
	}
}

func TestPublicAPICluster(t *testing.T) {
	c := NewCluster(4)
	if c.Size() != 4 {
		t.Fatalf("size = %d", c.Size())
	}
	c.Add(1, "u", "tennis winner")
	c.Add(2, "u", "tennis rally")
	got := c.TopN("winner", 5)
	if len(got) != 1 || got[0].Doc != 1 {
		t.Fatalf("TopN = %v", got)
	}
}
