// Command quickstart builds the Australian Open search engine in one
// call and runs its first integrated query.
package main

import (
	"fmt"
	"log"

	"dlsearch"
)

func main() {
	// Model + populate: generate the website, crawl it, reengineer the
	// web objects, analyse every video through the feature grammar and
	// store everything in the path-clustered physical level.
	engine, site, report, err := dlsearch.BuildAusOpen(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("populated %d documents, %d media objects, %d text bodies\n",
		report.Documents, report.MediaParsed, report.TextsIndexed)
	fmt.Printf("physical level: %d relations, %d associations\n\n",
		report.Relations, report.Associations)

	// A conceptual query: schema attributes instead of keywords.
	res, err := engine.Query(`
SELECT p.name, p.country FROM Player p
WHERE p.hand = 'left' AND p.gender = 'female'`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("left-handed female players:")
	for _, row := range res.Rows {
		fmt.Printf("  %-20s %s\n", row.Values[0], row.Values[1])
	}

	// A content-based query: IR ranking over a Hypertext attribute.
	res, err = engine.Query(`
SELECT p.name FROM Player p
WHERE contains(p.history, 'champion trophy winner') LIMIT 3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop champions by history relevance:")
	for _, row := range res.Rows {
		fmt.Printf("  %-20s score %.3f\n", row.Values[0], row.Score)
	}

	_ = site
	fmt.Println("\nnext: run examples/ausopen for the full Figure 13 walkthrough")
}
