// Command ausopen is the full running example of the paper: the
// specialised Australian Open search engine, culminating in the
// Figure 13 mixed conceptual / content-based query.
package main

import (
	"fmt"
	"log"

	"dlsearch"
)

func main() {
	site := dlsearch.GenerateSite(1)
	engine, err := dlsearch.NewAusOpen(site)
	if err != nil {
		log.Fatal(err)
	}

	// The conceptual model (Figure 3).
	fmt.Println("webspace schema:")
	for _, c := range engine.Schema.Classes() {
		fmt.Printf("  class %s:", c.Name)
		for _, a := range c.Attrs {
			fmt.Printf(" %s", a)
		}
		fmt.Println()
	}
	for _, a := range engine.Schema.Associations {
		fmt.Printf("  association %s: %s -> %s\n", a.Name, a.From, a.To)
	}

	// Populate: crawl + reengineer + analyse.
	crawler := dlsearch.NewCrawler(engine.Schema, site.Fetch)
	crawl, err := crawler.Crawl(site.BaseURL + "/index.html")
	if err != nil {
		log.Fatal(err)
	}
	report, err := engine.Populate(crawl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncrawled %d pages -> %d documents, %d media objects analysed\n",
		crawl.Pages, report.Documents, report.MediaParsed)
	fmt.Printf("detector calls: header=%d segment=%d tennis=%d\n\n",
		report.DetectorCalls["header"], report.DetectorCalls["segment"], report.DetectorCalls["tennis"])

	// The Figure 13 query.
	fmt.Println("query (Figure 13):", dlsearch.Figure13Query)
	res, err := engine.Query(dlsearch.Figure13Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nanswer:")
	for _, row := range res.Rows {
		fmt.Printf("  %-16s  %s  (score %.3f)\n", row.Values[0], row.Values[1], row.Score)
		for _, shot := range row.Shots {
			fmt.Printf("    netplay shot: frames %d..%d\n", shot.Begin, shot.End)
		}
	}

	// Cross-check against the generator's ground truth.
	fmt.Println("\nground truth:", site.Figure13Answer())
}
