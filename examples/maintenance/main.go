// Command maintenance demonstrates the index maintenance stage: the
// Feature Detector Scheduler localises detector upgrades through the
// dependency graph so only affected parse-tree parts are regenerated.
package main

import (
	"fmt"
	"log"
	"strconv"

	"dlsearch"
)

func main() {
	engine, _, _, err := dlsearch.BuildAusOpen(1)
	if err != nil {
		log.Fatal(err)
	}
	before := engine.Scheduler.Engine.Stats.DetectorCalls
	fmt.Printf("after population: header=%d segment=%d tennis=%d calls\n\n",
		before["header"], before["segment"], before["tennis"])

	// 1. A correction revision: no stored data is invalidated.
	rep, err := engine.Upgrade(&dlsearch.Detector{
		Name:    "header",
		Version: dlsearch.DetectorVersion{Major: 1, Minor: 0, Revision: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("header 1.0.0 -> 1.0.1 (%s): %d tasks, %d reparses\n",
		rep.Upgrade.Level, rep.Upgrade.Tasks, rep.Run.Reparses)

	// 2. A minor tennis-tracker revision with changed output: the shots
	// are re-tracked, netplay events revalidated through the parameter
	// dependency, segment is never re-run.
	rep, err = engine.Upgrade(&dlsearch.Detector{
		Name:    "tennis",
		Version: dlsearch.DetectorVersion{Major: 1, Minor: 1},
		Fn: func(ctx *dlsearch.TokenContext) ([]dlsearch.Token, error) {
			begin, _ := strconv.Atoi(ctx.Param(1))
			end, _ := strconv.Atoi(ctx.Param(2))
			var toks []dlsearch.Token
			for f := begin; f <= end; f++ {
				toks = append(toks,
					dlsearch.Token{Symbol: "frameNo", Value: strconv.Itoa(f)},
					dlsearch.Token{Symbol: "xPos", Value: "320.0"},
					dlsearch.Token{Symbol: "yPos", Value: "400.0"}, // never at the net
					dlsearch.Token{Symbol: "Area", Value: "21"},
					dlsearch.Token{Symbol: "Ecc", Value: "0.5"},
					dlsearch.Token{Symbol: "Orient", Value: "1.5"},
				)
			}
			return toks, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	after := engine.Scheduler.Engine.Stats.DetectorCalls
	fmt.Printf("tennis 1.0.0 -> 1.1.0 (%s): %d tasks, %d reparses, %d param revalidations, %d docs rewritten\n",
		rep.Upgrade.Level, rep.Upgrade.Tasks, rep.Run.Reparses, rep.Run.ParamRevalidations, rep.Restored)
	fmt.Printf("segment calls unchanged: %d -> %d (incremental maintenance)\n\n",
		before["segment"], after["segment"])

	// The query result reflects the maintained index.
	res, err := engine.Query(dlsearch.Figure13Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure 13 query after the broken tracker: %d rows (the new tracker finds nobody at the net)\n", len(res.Rows))
}
