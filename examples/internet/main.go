// Command internet runs the paper's unlimited-domain configuration
// (Figure 14): a generic feature grammar over an open web, answering
// "show me all portraits embedded in pages containing keywords
// semantically related to the word 'champion'".
package main

import (
	"fmt"
	"log"
	"sort"

	"dlsearch"
)

func main() {
	pages, images := dlsearch.SyntheticWeb(5)
	engine, err := dlsearch.NewInternetEngine(pages, images)
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.PopulateWeb(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d pages, %d images\n\n", len(pages), len(images))

	// The web's link structure, recovered from the &html references of
	// the grammar.
	graph := engine.LinkGraph()
	var urls []string
	for u := range graph {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	fmt.Println("link graph (from &html references):")
	for _, u := range urls {
		for _, to := range graph[u] {
			fmt.Printf("  %s -> %s\n", u, to)
		}
	}

	// The portraits query.
	fmt.Println("\nportraits on pages about 'champion':")
	for _, hit := range engine.PortraitsOnPagesAbout("champion", "winner", "trophy") {
		fmt.Printf("  %-42s on %-38s score %.3f\n", hit.Image, hit.Page, hit.Score)
	}
}
