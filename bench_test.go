// Root benchmark harness: one benchmark (family) per experiment of
// DESIGN.md's index. The paper reports no absolute numbers, so the
// benches regenerate the *shape* of each claim: who wins, by what
// factor, and how the series move with the sweep parameter. Module-
// local micro-experiments (E13 token stacks, E15 HMM) live in their
// packages; cmd/experiments prints the full paper-vs-measured tables.
package dlsearch

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dlsearch/internal/bat"
	"dlsearch/internal/cobra"
	"dlsearch/internal/core"
	"dlsearch/internal/detector"
	"dlsearch/internal/dist"
	"dlsearch/internal/ir"
	"dlsearch/internal/monetxml"
	"dlsearch/internal/obs"
	"dlsearch/internal/server"
	"dlsearch/internal/slo"
	"dlsearch/internal/video"
)

// --- shared corpus generators ---

// xmlDoc renders a synthetic article document of the given size.
func xmlDoc(i, paragraphs int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<article id="%d"><title>Article %d</title>`, i, i)
	for p := 0; p < paragraphs; p++ {
		fmt.Fprintf(&sb, `<section no="%d"><para>tennis open winner rally %d</para><para>net serve ace %d</para></section>`, p, i, p)
	}
	sb.WriteString("</article>")
	return sb.String()
}

// textCorpus builds n pseudo-natural documents over a skewed
// vocabulary (frequent function-like words plus rare content words),
// the distribution the idf fragmentation exploits.
func textCorpus(n int, seed int64) []string {
	common := []string{"match", "play", "game", "set", "court", "ball"}
	rare := []string{"seles", "hingis", "capriati", "melbourne", "trophy",
		"champion", "winner", "ace", "volley", "smash", "rally", "serve"}
	rng := rand.New(rand.NewSource(seed))
	docs := make([]string, n)
	for i := range docs {
		var sb strings.Builder
		for w := 0; w < 40; w++ {
			if rng.Intn(4) == 0 {
				sb.WriteString(rare[rng.Intn(len(rare))])
			} else {
				sb.WriteString(common[rng.Intn(len(common))])
			}
			sb.WriteByte(' ')
		}
		docs[i] = sb.String()
	}
	return docs
}

// --- E06: the Figure 13 mixed query ---

func BenchmarkE06Figure13Query(b *testing.B) {
	engine, _, _, err := BuildAusOpen(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := engine.Query(Figure13Query)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != 2 {
			b.Fatalf("rows = %d", len(res.Rows))
		}
	}
}

// --- E08: streaming bulkload vs DOM materialisation ---

func BenchmarkE08Bulkload(b *testing.B) {
	for _, docs := range []int{100, 1000} {
		b.Run(fmt.Sprintf("monet-sax/docs=%d", docs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := monetxml.NewStore()
				for d := 0; d < docs; d++ {
					if _, err := s.Load("u", strings.NewReader(xmlDoc(d, 5))); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(fmt.Sprintf("dom-baseline/docs=%d", docs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := monetxml.NewStore()
				for d := 0; d < docs; d++ {
					// Materialise the full tree first (DOM), then insert.
					n, err := monetxml.ParseNode(strings.NewReader(xmlDoc(d, 5)))
					if err != nil {
						b.Fatal(err)
					}
					if _, err := s.LoadNode("u", n); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// --- E09: path-clustered relations vs generic edge mapping ---

func BenchmarkE09PathQuery(b *testing.B) {
	for _, docs := range []int{200, 1000} {
		ms := monetxml.NewStore()
		es := monetxml.NewEdgeStore()
		for d := 0; d < docs; d++ {
			n := monetxml.MustParseNode(xmlDoc(d, 5))
			if _, err := ms.LoadNode("u", n); err != nil {
				b.Fatal(err)
			}
			es.LoadNode(n)
		}
		b.Run(fmt.Sprintf("monet/docs=%d", docs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got, err := ms.NodesAt("article/section/para")
				if err != nil || len(got) != docs*10 {
					b.Fatalf("got %d, err %v", len(got), err)
				}
			}
		})
		b.Run(fmt.Sprintf("edge/docs=%d", docs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				got := es.NodesAt("article/section/para")
				if len(got) != docs*10 {
					b.Fatalf("got %d", len(got))
				}
			}
		})
	}
}

// --- E10: idf-descending fragmentation with a-priori cut-off ---

func BenchmarkE10FragmentedTopN(b *testing.B) {
	docs := textCorpus(5000, 10)
	ix := ir.NewIndex()
	for i, d := range docs {
		ix.Add(bat.OID(i+1), "u", d)
	}
	const query = "seles champion volley match"
	for _, frags := range []int{1, 2, 4, 8} {
		ix.Fragmentize(8)
		res, quality := ix.TopNFragments(query, 10, frags)
		b.Run(fmt.Sprintf("cutoff=%d-of-8", frags), func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(quality.Value(), "quality")
			b.ReportMetric(float64(len(res)), "results")
			for i := 0; i < b.N; i++ {
				ix.TopNFragments(query, 10, frags)
			}
		})
	}
}

// --- E11: shared-nothing distribution ---

func BenchmarkE11DistributedTopN(b *testing.B) {
	docs := textCorpus(8000, 4)
	for _, k := range []int{1, 2, 4, 8} {
		c := dist.NewCluster(k, nil)
		for i, d := range docs {
			c.Add(bat.OID(i+1), "u", d)
		}
		b.Run(fmt.Sprintf("parallel/nodes=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := c.TopN("champion winner serve", 10); len(got) != 10 {
					b.Fatalf("got %d", len(got))
				}
			}
		})
		b.Run(fmt.Sprintf("sequential/nodes=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c.TopNSequential("champion winner serve", 10)
			}
		})
	}
}

// --- E11 remote: the networked cluster over HTTP node servers ---

// BenchmarkE11RemoteTopN measures the network overhead of the serving
// layer: the same shared-nothing top-N as E11, but every node lives
// behind an httptest HTTP server and is reached through
// dist.RemoteNode (JSON round-trips, loopback transport). Compare
// against E11DistributedTopN/parallel to read the per-query cost of
// the network boundary.
func BenchmarkE11RemoteTopN(b *testing.B) {
	docs := textCorpus(2000, 4)
	ctx := context.Background()
	for _, k := range []int{1, 2, 4, 8} {
		nodes := make([]dist.Node, k)
		for i := range nodes {
			srv := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(),
				&server.NodeConfig{Cache: core.NewQueryCache(64)}))
			b.Cleanup(srv.Close)
			nodes[i] = dist.NewRemoteNode(srv.URL, srv.Client())
		}
		c := dist.NewClusterOf(nodes, nil)
		for i, d := range docs {
			if err := c.AddContext(ctx, bat.OID(i+1), "u", d); err != nil {
				b.Fatal(err)
			}
		}
		b.Run(fmt.Sprintf("nodes=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sr, err := c.Search(ctx, "champion winner serve", 10)
				if err != nil {
					b.Fatal(err)
				}
				if len(sr.Results) != 10 || !sr.Complete() {
					b.Fatalf("results=%d dropped=%v", len(sr.Results), sr.Dropped)
				}
			}
		})
	}
}

// --- E12: incremental maintenance vs full rebuild (engine level) ---

func BenchmarkE12MaintenanceIncremental(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		engine, _, _, err := BuildAusOpen(1)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := engine.Upgrade(&detector.Impl{
			Name:    "header",
			Version: detector.Version{Major: 1, Minor: 1},
			Fn:      headerLikeSite(engine),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE12MaintenanceFullRebuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := BuildAusOpen(1); err != nil {
			b.Fatal(err)
		}
	}
}

// headerLikeSite re-registers the same header behaviour under a new
// version (output unchanged -> purely the revalidation cost).
func headerLikeSite(e *Engine) detector.Func {
	impl, _ := e.Registry.Lookup("header")
	return impl.Fn
}

// --- E14: shot segmentation and classification throughput ---

func BenchmarkE14ShotClassification(b *testing.B) {
	specs := video.RandomBroadcast(3, 30, video.HardBlue)
	v := video.Generate(specs, video.Options{Seed: 3})
	seg := cobra.NewSegmenter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := seg.Segment(v)
		if len(a.Shots) == 0 {
			b.Fatal("no shots")
		}
	}
	b.ReportMetric(float64(len(v.Frames))/float64(1), "frames/op")
}

// --- E16: top-N pushdown vs naive full ranking ---

func BenchmarkE16TopN(b *testing.B) {
	docs := textCorpus(5000, 6)
	ix := ir.NewIndex()
	for i, d := range docs {
		ix.Add(bat.OID(i+1), "u", d)
	}
	const query = "seles trophy"
	b.Run("optimized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.TopN(query, 10)
		}
	})
	b.Run("naive-full-ranking", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.TopNNaive(query, 10)
		}
	})
}

// --- E17: a-priori conceptual restriction below the IR ranking ---

// At collection scale, ranking only the documents that survive the
// cheap conceptual selection ("articles by this author") beats ranking
// everything and filtering afterwards. The tiny running-example site
// cannot show this; a 20k-document collection with a 1% conceptual
// candidate set does.
func BenchmarkE17APrioriRestriction(b *testing.B) {
	docs := textCorpus(20000, 8)
	ix := ir.NewIndex()
	for i, d := range docs {
		ix.Add(bat.OID(i+1), "u", d)
	}
	// The conceptual restriction admits 1% of the collection.
	candidates := map[bat.OID]bool{}
	for i := 1; i <= len(docs); i += 100 {
		candidates[bat.OID(i)] = true
	}
	const query = "champion winner serve"
	b.Run("restricted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ix.TopNRestricted(query, 10, candidates)
		}
	})
	b.Run("unrestricted-late-filter", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			all := ix.TopN(query, len(docs))
			kept := 0
			for _, r := range all {
				if candidates[r.Doc] {
					kept++
					if kept == 10 {
						break
					}
				}
			}
		}
	})
}

// --- E18: fragment-budgeted distributed search ---

// BenchmarkE18FragmentBudgetRemote sweeps the fragment budget over a
// cluster of HTTP node servers: the a-priori cut-off of E10 pushed
// below the per-node RES sets of E11. budget=8-of-8 is the exact
// search (byte-identical to /search without a plan); smaller budgets
// trade reported quality for latency — the quality metric is the
// cluster-wide estimate the coordinator returns.
func BenchmarkE18FragmentBudgetRemote(b *testing.B) {
	docs := textCorpus(2000, 4)
	ctx := context.Background()
	const k = 4
	nodes := make([]dist.Node, k)
	for i := range nodes {
		srv := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(), nil))
		b.Cleanup(srv.Close)
		nodes[i] = dist.NewRemoteNode(srv.URL, srv.Client())
	}
	c := dist.NewClusterOf(nodes, nil)
	for i, d := range docs {
		if err := c.AddContext(ctx, bat.OID(i+1), "u", d); err != nil {
			b.Fatal(err)
		}
	}
	const query = "seles champion volley match"
	for _, budget := range []int{1, 2, 4, 8} {
		plan := ir.EvalPlan{N: 10, Frags: 8, Budget: budget}
		sr, err := c.SearchPlan(ctx, query, plan)
		if err != nil {
			b.Fatal(err)
		}
		quality := sr.Quality.Value()
		b.Run(fmt.Sprintf("budget=%d-of-8", budget), func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(quality, "quality")
			for i := 0; i < b.N; i++ {
				sr, err := c.SearchPlan(ctx, query, plan)
				if err != nil {
					b.Fatal(err)
				}
				if len(sr.Results) == 0 || !sr.Complete() {
					b.Fatalf("results=%d dropped=%v", len(sr.Results), sr.Dropped)
				}
			}
		})
	}
}

// --- E19: compressed postings in the scoring hot path ---

// BenchmarkE19CompressedScoring quantifies the memory-budget
// trade-off: the same top-N over plain posting columns vs an index
// whose cold (low-idf) lists are held delta+varint compressed and
// walked in place. The plain_kb/packed_kb metrics record the
// space side of the trade ("compressed postings in the hot path",
// ROADMAP E-ablation).
func BenchmarkE19CompressedScoring(b *testing.B) {
	docs := textCorpus(5000, 6)
	build := func(budgetDiv int) *ir.Index {
		ix := ir.NewIndex()
		for i, d := range docs {
			ix.Add(bat.OID(i+1), "u", d)
		}
		ix.Freeze()
		if budgetDiv > 0 {
			plain, _, _ := ix.MemoryFootprint()
			ix.SetMemoryBudget(plain / budgetDiv)
		}
		return ix
	}
	const query = "seles champion volley match"
	for _, cfg := range []struct {
		name      string
		budgetDiv int
	}{{"plain", 0}, {"budget=1/4", 4}, {"budget=1/16", 16}} {
		ix := build(cfg.budgetDiv)
		plain, packed, cold := ix.MemoryFootprint()
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(plain)/1024, "plain_kb")
			b.ReportMetric(float64(packed)/1024, "packed_kb")
			b.ReportMetric(float64(cold), "cold_terms")
			for i := 0; i < b.N; i++ {
				if got := ix.TopN(query, 10); len(got) != 10 {
					b.Fatalf("got %d", len(got))
				}
			}
		})
	}
}

// --- E20: observability overhead ---

// The instrumentation must be invisible on the hot path: with metrics
// attached, LocalNode.TopNWithStats adds exactly one clock read and
// one atomic histogram observation around the identical scoring code —
// no locks, no allocations. The "bare" and "instrumented" sub-benches
// run the same node-level top-N; the delta IS the cost of observation
// and must stay within a few percent with 0 allocs/op difference.
func BenchmarkE20ObservabilityOverhead(b *testing.B) {
	docs := textCorpus(5000, 21)
	ix := ir.NewIndex()
	for i, d := range docs {
		ix.Add(bat.OID(i+1), "u", d)
	}
	node := dist.NewLocalNode(ix)
	global, err := node.Stats(context.Background())
	if err != nil {
		b.Fatal(err)
	}
	const query = "seles champion volley match"
	run := func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := node.TopNWithStats(context.Background(), query, 10, global)
			if err != nil || len(res) == 0 {
				b.Fatalf("topn: %v (%d results)", err, len(res))
			}
		}
	}
	b.Run("bare", run)
	reg := obs.NewRegistry()
	node.SetMetrics(&dist.NodeMetrics{
		Scoring:    reg.Histogram("dl_node_scoring_seconds", "scoring wall time", "", obs.LatencyBounds()),
		IngestDocs: reg.Counter("dl_node_ingest_docs_total", "ingested docs", ""),
	})
	b.Run("instrumented", run)
}

// --- E21: binary wire protocol + persistent-connection transport ---

// BenchmarkE21BinaryWire re-runs E11RemoteTopN's distributed top-N
// under each wire codec: "json" is the pr2_network protocol (one HTTP
// round-trip of JSON per node per query), "binary" swaps the bodies
// for the framed binary codec (same HTTP machinery), and "wire" adds
// the persistent-connection transport — one upgraded conn per node,
// one frame out and one back per RPC, no per-query HTTP. The
// acceptance bar of the binary-wire PR reads the nodes=1 rows:
// codec=wire must carry ≥5× fewer bytes/op and allocs/op than
// pr2_network's JSON baseline (15329 B/op, 223 allocs/op).
func BenchmarkE21BinaryWire(b *testing.B) {
	docs := textCorpus(2000, 4)
	ctx := context.Background()
	codecs := []struct {
		name  string
		codec dist.Codec
	}{
		{"json", dist.CodecJSON},
		{"binary", dist.CodecBinary},
		{"wire", dist.CodecWire},
	}
	for _, cc := range codecs {
		for _, k := range []int{1, 2, 4, 8} {
			nodes := make([]dist.Node, k)
			for i := range nodes {
				srv := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(),
					&server.NodeConfig{Cache: core.NewQueryCache(64)}))
				b.Cleanup(srv.Close)
				rn := dist.NewRemoteNode(srv.URL, srv.Client())
				rn.SetCodec(cc.codec)
				nodes[i] = rn
			}
			c := dist.NewClusterOf(nodes, nil)
			for i, d := range docs {
				if err := c.AddContext(ctx, bat.OID(i+1), "u", d); err != nil {
					b.Fatal(err)
				}
			}
			b.Run(fmt.Sprintf("codec=%s/nodes=%d", cc.name, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					sr, err := c.Search(ctx, "champion winner serve", 10)
					if err != nil {
						b.Fatal(err)
					}
					if len(sr.Results) != 10 || !sr.Complete() {
						b.Fatalf("results=%d dropped=%v", len(sr.Results), sr.Dropped)
					}
				}
			})
		}
	}
}

// --- E22: adaptive serving (SLO budget controller) ---

// BenchmarkE22AdaptiveServe prices the PR 9 control loop. "decide" is
// the coordinator's per-query hot path — one controller decision plus
// one curve observation over a fully warmed quality/latency curve —
// and must report 0 allocs/op (the E20 discipline: observation may not
// allocate). The budget sweep re-runs E18's budgeted remote top-N with
// the cost model attached: every node reports (budget, latency,
// quality) into the curve on every query, so the delta against E18's
// raw numbers is the full price of learning the curve in production.
func BenchmarkE22AdaptiveServe(b *testing.B) {
	ctl := slo.New(slo.Config{Target: 10 * time.Millisecond, MaxBudget: 8, MinQuality: 0.3})
	curve := ctl.Curve("bench")
	for budget := 1; budget <= 8; budget++ {
		for i := 0; i < 50; i++ {
			curve.ObserveCost(budget, float64(budget)*0.002, float64(budget)/8)
		}
	}
	b.Run("decide", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			d := ctl.Decide("bench", ctl.Target(), 1.5)
			curve.ObserveCost(d.Budget, 0.004, 0.5)
		}
	})

	docs := textCorpus(2000, 4)
	ctx := context.Background()
	const k = 4
	nodes := make([]dist.Node, k)
	for i := range nodes {
		srv := httptest.NewServer(server.NewNodeHandler(ir.NewIndex(), nil))
		b.Cleanup(srv.Close)
		nodes[i] = dist.NewRemoteNode(srv.URL, srv.Client())
	}
	c := dist.NewClusterOf(nodes, nil)
	served := slo.New(slo.Config{Target: 50 * time.Millisecond, MaxBudget: 8})
	c.SetCostCurve(served.Curve("bench"))
	for i, d := range docs {
		if err := c.AddContext(ctx, bat.OID(i+1), "u", d); err != nil {
			b.Fatal(err)
		}
	}
	const query = "seles champion volley match"
	for _, budget := range []int{1, 2, 4, 8} {
		plan := ir.EvalPlan{N: 10, Frags: 8, Budget: budget}
		sr, err := c.SearchPlan(ctx, query, plan)
		if err != nil {
			b.Fatal(err)
		}
		quality := sr.Quality.Value()
		b.Run(fmt.Sprintf("observed/budget=%d-of-8", budget), func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(quality, "quality")
			for i := 0; i < b.N; i++ {
				sr, err := c.SearchPlan(ctx, query, plan)
				if err != nil {
					b.Fatal(err)
				}
				if len(sr.Results) == 0 || !sr.Complete() {
					b.Fatalf("results=%d dropped=%v", len(sr.Results), sr.Dropped)
				}
			}
		})
	}
	if pts := served.Curve("bench").Snapshot(); len(pts) == 0 {
		b.Fatal("benchmark ran with no curve observations")
	}
}

// --- E23: streaming NDJSON ingest vs buffered batch ---

// BenchmarkE23StreamIngest prices PR 10's streaming ingest: the same
// 1000-document corpus enters a fresh 2-partition cluster once as one
// buffered /add/batch body (bounded by the request cap — the old
// contract) and once as an NDJSON /add/stream whose total size far
// exceeds the coordinator's 4KiB body cap (per-line decode, per-index
// batches of 256). The claim is not that streaming is faster — it is
// that unbounded-corpus ingest costs about the same per document as
// the buffered path it replaces, while holding O(line + batch) memory.
func BenchmarkE23StreamIngest(b *testing.B) {
	const docs = 1000
	corpus := textCorpus(docs, 11)

	var batchBody strings.Builder
	batchBody.WriteString(`{"index":"a","docs":[`)
	for i, text := range corpus {
		if i > 0 {
			batchBody.WriteByte(',')
		}
		fmt.Fprintf(&batchBody, `{"doc":%d,"url":"u%d","text":%q}`, i+1, i+1, text)
	}
	batchBody.WriteString("]}")

	var streamBody strings.Builder
	for i, text := range corpus {
		fmt.Fprintf(&streamBody, `{"index":"a","doc":%d,"url":"u%d","text":%q}`, i+1, i+1, text)
		streamBody.WriteByte('\n')
	}

	run := func(b *testing.B, path, body, committed string, maxBody int64) {
		b.ReportAllocs()
		b.SetBytes(int64(len(body)))
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			co := server.NewCoordinator(
				map[string]*dist.Cluster{"a": dist.NewCluster(2, nil)},
				&server.CoordinatorConfig{MaxBody: maxBody})
			h := co.Handler()
			req := httptest.NewRequest("POST", path, strings.NewReader(body))
			w := httptest.NewRecorder()
			b.StartTimer()
			h.ServeHTTP(w, req)
			b.StopTimer()
			if w.Code != 200 {
				b.Fatalf("%s = %d: %.200s", path, w.Code, w.Body.String())
			}
			out := w.Body.String()
			if !strings.Contains(out, committed) {
				b.Fatalf("%s did not commit the corpus: %.200s", path, out[max(0, len(out)-200):])
			}
			b.StartTimer()
		}
	}
	b.Run(fmt.Sprintf("batch/docs=%d", docs), func(b *testing.B) {
		// The buffered path needs the whole body under the cap.
		run(b, "/add/batch", batchBody.String(), `"docs":[1,`, int64(len(batchBody.String())+1024))
	})
	b.Run(fmt.Sprintf("stream/docs=%d", docs), func(b *testing.B) {
		if int64(len(streamBody.String())) <= 4096 {
			b.Fatal("stream body does not exceed the cap")
		}
		run(b, "/add/stream", streamBody.String(), `"committed":1000,"degraded":0,"failed":0,"errors":0`, 4096)
	})
}
